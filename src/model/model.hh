/**
 * @file
 * Learned WS models and their versioned text file format.
 *
 * A WsModel maps the feature vector of a candidate coschedule
 * (model/features.hh) to a predicted weighted speedup, plus an
 * uncertainty estimate the online samplek mode uses to decide which
 * low-ranked candidates still deserve a detailed simulation. Two
 * concrete models exist, both fit offline by sostrain from JSONL
 * decision traces with no dependencies beyond the standard library:
 *
 *  - LinearModel: ridge regression over z-scored features. Its
 *    uncertainty grows with the z-space distance of a query from the
 *    training distribution (extrapolation is what a linear fit is
 *    worst at).
 *
 *  - RegressionTree: a depth-capped CART fit by variance reduction.
 *    Its uncertainty is the training-target stddev of the leaf the
 *    query lands in.
 *
 * Model files are plain text, versioned, and written with the same
 * shortest-round-trip double rendering as the run manifests, so a
 * save/load round-trip reproduces predictions bit-for-bit:
 *
 *     sos-model 1
 *     features <schema-version>
 *     kind linear|tree
 *     uncertainty_threshold <double>
 *     nfeatures <n>
 *     feature <name> <mean> <std>        (one per feature)
 *     ... kind-specific lines ...
 *     end
 *
 * Every load failure throws ModelError with a "<file>:<line>: message"
 * context, mirroring MachineConfigError.
 */

#ifndef SOS_MODEL_MODEL_HH
#define SOS_MODEL_MODEL_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/features.hh"

namespace sos::model {

/** Raised on malformed model files; what() carries file:line. */
class ModelError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A trained features -> predicted-WS regressor. */
class WsModel
{
  public:
    virtual ~WsModel() = default;

    /** "linear" or "tree" (the file-format kind token). */
    virtual std::string kind() const = 0;

    /** Predicted weighted speedup of the candidate. */
    virtual double predict(const FeatureVector &features) const = 0;

    /**
     * Estimated prediction error (WS units). The samplek screen
     * detail-simulates any candidate whose uncertainty exceeds
     * uncertaintyThreshold() even when the model ranks it low.
     */
    virtual double uncertainty(const FeatureVector &features) const = 0;

    /** Feature names the model was fit on, in vector order. */
    const std::vector<std::string> &features() const { return featureNames_; }

    /** Screening cutoff stored at fit time (a training quantile). */
    double uncertaintyThreshold() const { return uncertaintyThreshold_; }

    /** Serialize to the versioned text format. */
    std::string render() const;

    /** render() to @p path; throws ModelError on I/O failure. */
    void save(const std::string &path) const;

    /** @name Fit-time metadata (set by the trainer / the loader) @{ */
    void setFeatureNames(std::vector<std::string> names)
    {
        featureNames_ = std::move(names);
    }
    void setUncertaintyThreshold(double threshold)
    {
        uncertaintyThreshold_ = threshold;
    }
    /** @} */

  protected:
    /** Emit the kind-specific lines between the header and "end". */
    virtual void renderBody(std::string &out) const = 0;

    std::vector<std::string> featureNames_;
    double uncertaintyThreshold_ = 0.0;
};

/** Ridge regression over z-scored features. */
class LinearModel : public WsModel
{
  public:
    std::string kind() const override { return "linear"; }
    double predict(const FeatureVector &features) const override;
    double uncertainty(const FeatureVector &features) const override;

    /** @name Fit parameters (set by the trainer / the loader) @{ */
    std::vector<double> mean;    ///< per-feature training mean
    std::vector<double> stddev;  ///< per-feature training stddev
    std::vector<double> weights; ///< per-feature weight in z-space
    double bias = 0.0;
    double residualStd = 0.0;    ///< training residual stddev
    /** @} */

  protected:
    void renderBody(std::string &out) const override;
};

/** Depth-capped CART regressor (variance-reduction splits). */
class RegressionTree : public WsModel
{
  public:
    /** One node; leaves carry the training mean/stddev of the leaf. */
    struct Node
    {
        int feature = -1;       ///< split feature (-1 = leaf)
        double threshold = 0.0; ///< go left when value <= threshold
        int left = -1;
        int right = -1;
        double mean = 0.0;      ///< leaf prediction
        double stddev = 0.0;    ///< leaf uncertainty
        int count = 0;          ///< training rows in the leaf
        bool leaf() const { return feature < 0; }
    };

    std::string kind() const override { return "tree"; }
    double predict(const FeatureVector &features) const override;
    double uncertainty(const FeatureVector &features) const override;

    std::vector<Node> nodes; ///< node 0 is the root

  protected:
    void renderBody(std::string &out) const override;

  private:
    const Node &descend(const FeatureVector &features) const;
};

/**
 * Parse a model from the text format. @p context names the source in
 * errors (a file path, or e.g. "<inline>" in tests).
 */
std::unique_ptr<WsModel> parseModel(const std::string &text,
                                    const std::string &context);

/** Read and parse @p path; throws ModelError with file:line context. */
std::unique_ptr<WsModel> loadModel(const std::string &path);

} // namespace sos::model

#endif // SOS_MODEL_MODEL_HH
