/**
 * @file
 * The shared feature pipeline of the learned-model subsystem.
 *
 * Three places in the repo used to turn "what we know about threads
 * and counters" into a goodness number with private, ad-hoc
 * arithmetic: the Predictor registry (core/predictors.cc), the SYNPA
 * thread-to-core policies (core/thread_to_core.cc), and the cluster's
 * signature dispatcher (cluster/dispatch.cc). This header is the one
 * place that arithmetic lives now:
 *
 *  - ProfileSignature: the normalized per-schedule counter signature
 *    every hand-tuned predictor consumes (IPC, conflict percentages,
 *    cache hit rate, mix imbalance, balance/diversity). Extraction is
 *    a pure function of the ScheduleProfile, so the refactored
 *    predictors are bit-identical to their pre-refactor selves
 *    (golden-pinned, like the section 8/9 refactors).
 *
 *  - ThreadSignature: the static per-unit signature (instruction mix,
 *    footprint, ILP, branch behaviour, solo IPC) a learned model sees
 *    *before* any co-run simulation. Built from a WorkloadProfile or,
 *    as a proxy, from measured PerfCounters (cluster nodes).
 *
 *  - FeatureVector composition: per-tuple aggregates plus pairwise
 *    interaction terms (mix complement, working-set overlap, sibling
 *    coscheduling), averaged over a schedule's period. Composable
 *    pre-simulation -- which is exactly what lets the samplek online
 *    mode score candidates before deciding which to detail-simulate.
 *
 *  - PairAffinity: the sampled pairwise-WS table behind SYNPA's
 *    greedy grouping.
 *
 * Trace events and model files both carry kFeatureSchemaVersion; the
 * trainer refuses mismatched traces so a model is never fit on
 * features with a different meaning.
 */

#ifndef SOS_MODEL_FEATURES_HH
#define SOS_MODEL_FEATURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule_profile.hh"
#include "cpu/perf_counters.hh"
#include "trace/workload_profile.hh"

namespace sos::model {

/** Version stamped on trace feature fields and model files. */
constexpr int kFeatureSchemaVersion = 1;

/**
 * The counter signature of one sampled schedule, normalized the way
 * the paper's predictors read it. Each field is computed exactly as
 * the pre-refactor predictor arithmetic did (same helpers, same
 * order), so scores built from this struct are bit-identical.
 */
struct ProfileSignature
{
    double ipc = 0.0;            ///< retired per cycle
    double allConflictPct = 0.0; ///< sum of all eight conflict %
    double l1dHitRate = 0.0;     ///< [0, 1]
    double fqConflictPct = 0.0;  ///< FP issue-queue conflict %
    double fpConflictPct = 0.0;  ///< FP unit conflict %
    double sum2ConflictPct = 0.0;///< fq + fp
    double mixImbalance = 0.0;   ///< aggregate |fp share - int share|
    double balance = 0.0;        ///< stddev of per-slice IPC
    double sliceDiversity = 0.0; ///< mean per-slice mix imbalance
};

/** Extract the predictor-facing signature of one profile. */
ProfileSignature profileSignature(const ScheduleProfile &profile);

/**
 * Working sets land in [0, 1] against a 64 KiB yardstick (the largest
 * Table 1 sets; anything bigger is equally "large").
 */
double normalizedWorkingSet(std::uint64_t working_set_bytes);

/**
 * FP share of the dispatched arithmetic mix measured by @p counters
 * (0 when the interval dispatched no arithmetic at all).
 */
double counterFpShare(const PerfCounters &counters);

/** Static signature of one schedulable unit (thread). */
struct ThreadSignature
{
    /** Owning job id (-1 = unknown); sibling detection only. */
    int jobId = -1;

    double soloIpc = 0.0;   ///< calibrated solo IPC (0 if unknown)
    double fp = 0.0;        ///< FP fraction of the dynamic stream
    double load = 0.0;      ///< load fraction
    double store = 0.0;     ///< store fraction
    double workingSet = 0.0;///< normalizedWorkingSet()
    double stream = 0.0;    ///< streaming-access fraction
    double chase = 0.0;     ///< pointer-chase fraction
    double ilp = 0.0;       ///< dependence distance, normalized to [0,1]
    double branchRate = 0.0;///< branches per instruction
    double branchPredictability = 0.0;
    double code = 0.0;      ///< code footprint, normalized to [0,1]
    bool syncs = false;     ///< barrier-synchronizing thread
};

/** Signature of a unit from its static workload model + solo IPC. */
ThreadSignature makeThreadSignature(int job_id,
                                    const WorkloadProfile &profile,
                                    double solo_ipc);

/**
 * Proxy signature from measured counters (a cluster node's recent
 * live slices): mix shares from the dispatch-class counters, cache
 * pressure standing in for the working set. Static-only fields
 * (stream/chase/ILP/code) stay zero -- counters cannot see them.
 */
ThreadSignature signatureFromCounters(const PerfCounters &counters);

/** Fixed-order feature values; index into featureNames(). */
using FeatureVector = std::vector<double>;

/** Names of the composed features, in FeatureVector order. */
const std::vector<std::string> &featureNames();

/** Number of composed features (featureNames().size()). */
std::size_t numFeatures();

/**
 * Compose the feature vector of one candidate schedule: per-tuple
 * aggregates (solo-IPC level and spread, FP mix and its pairwise
 * complement, working-set pressure and overlap, ILP, branch payload,
 * sibling/sync coscheduling) averaged over every tuple of the period,
 * plus the schedule-level balance of per-tuple solo IPC. @p tuples
 * holds unit indices into @p signatures (Schedule::tuples() or any
 * window of OpenCandidate core tuples). Pure and allocation-cheap:
 * callable for every candidate before any simulation.
 */
FeatureVector
composeScheduleFeatures(const std::vector<ThreadSignature> &signatures,
                        const std::vector<std::vector<int>> &tuples);

/**
 * Feature vector of a single coschedule tuple -- the degenerate
 * one-tuple schedule. The learned cluster dispatcher scores a
 * (job, node) pair this way.
 */
FeatureVector
composeTupleFeatures(const std::vector<ThreadSignature> &signatures);

/**
 * Mean sampled WS per coscheduled pair (SYNPA's affinity table).
 * observe() calls must happen in deterministic order; mean() is 0 for
 * never-coscheduled pairs (the honest cold-start behaviour).
 */
class PairAffinity
{
  public:
    explicit PairAffinity(std::size_t num_units);

    /** Credit @p ws to every unordered pair in @p tuple. */
    void observe(const std::vector<int> &tuple, double ws);

    /** Mean observed WS of the pair (0 when never coscheduled). */
    double mean(std::size_t a, std::size_t b) const;

  private:
    std::size_t n_;
    std::vector<double> sum_; ///< n x n, row-major
    std::vector<int> count_;
};

} // namespace sos::model

#endif // SOS_MODEL_FEATURES_HH
