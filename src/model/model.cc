#include "model/model.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "stats/json.hh"

namespace sos::model {

namespace {

constexpr int kFormatVersion = 1;

void
appendDouble(std::string &out, double value)
{
    // Same shortest-round-trip rule as the manifests: a save/load
    // round-trip reproduces every prediction bit-for-bit.
    out += stats::formatDouble(value);
}

[[noreturn]] void
throwAt(const std::string &context, int line, const std::string &message)
{
    std::ostringstream os;
    os << context << ":" << line << ": " << message;
    throw ModelError(os.str());
}

/** Tokenized line with its 1-based source line number. */
struct Line
{
    int number = 0;
    std::vector<std::string> tokens;
};

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> lines;
    std::istringstream stream(text);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        Line line;
        line.number = number;
        std::istringstream fields(raw);
        std::string token;
        while (fields >> token)
            line.tokens.push_back(token);
        if (!line.tokens.empty() && line.tokens.front().front() != '#')
            lines.push_back(std::move(line));
    }
    return lines;
}

class Parser
{
  public:
    Parser(std::vector<Line> lines, std::string context)
        : lines_(std::move(lines)), context_(std::move(context))
    {
    }

    bool done() const { return next_ >= lines_.size(); }

    const Line &
    take(const std::string &expectation)
    {
        if (done()) {
            throwAt(context_, lastLine() + 1,
                    "unexpected end of model file, expected " + expectation);
        }
        return lines_[next_++];
    }

    [[noreturn]] void
    fail(const Line &line, const std::string &message) const
    {
        throwAt(context_, line.number, message);
    }

    double
    number(const Line &line, const std::string &token) const
    {
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail(line, "expected a number, got '" + token + "'");
        return value;
    }

    int
    integer(const Line &line, const std::string &token) const
    {
        const double value = number(line, token);
        const int as_int = static_cast<int>(value);
        if (static_cast<double>(as_int) != value)
            fail(line, "expected an integer, got '" + token + "'");
        return as_int;
    }

    void
    expect(const Line &line, const std::string &keyword,
           std::size_t operands) const
    {
        if (line.tokens.front() != keyword) {
            fail(line, "expected '" + keyword + "', got '" +
                           line.tokens.front() + "'");
        }
        if (line.tokens.size() != operands + 1) {
            std::ostringstream os;
            os << "'" << keyword << "' takes " << operands
               << " operand(s), got " << (line.tokens.size() - 1);
            fail(line, os.str());
        }
    }

  private:
    int
    lastLine() const
    {
        return lines_.empty() ? 0 : lines_.back().number;
    }

    std::vector<Line> lines_;
    std::string context_;
    std::size_t next_ = 0;
};

std::unique_ptr<LinearModel>
parseLinearBody(Parser &parser, std::size_t nfeatures)
{
    auto model = std::make_unique<LinearModel>();
    {
        const Line &line = parser.take("'bias'");
        parser.expect(line, "bias", 1);
        model->bias = parser.number(line, line.tokens[1]);
    }
    model->weights.reserve(nfeatures);
    for (std::size_t i = 0; i < nfeatures; ++i) {
        const Line &line = parser.take("'weight'");
        parser.expect(line, "weight", 2);
        model->weights.push_back(parser.number(line, line.tokens[2]));
    }
    {
        const Line &line = parser.take("'residual_std'");
        parser.expect(line, "residual_std", 1);
        model->residualStd = parser.number(line, line.tokens[1]);
    }
    return model;
}

std::unique_ptr<RegressionTree>
parseTreeBody(Parser &parser, std::size_t nfeatures)
{
    auto model = std::make_unique<RegressionTree>();
    const Line &header = parser.take("'nodes'");
    parser.expect(header, "nodes", 1);
    const int count = parser.integer(header, header.tokens[1]);
    if (count < 1)
        parser.fail(header, "a tree needs at least one node");
    model->nodes.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const Line &line = parser.take("'node'");
        if (line.tokens.front() != "node" || line.tokens.size() < 3)
            parser.fail(line, "expected 'node <index> split|leaf ...'");
        const int index = parser.integer(line, line.tokens[1]);
        if (index != i)
            parser.fail(line, "tree nodes must appear in index order");
        RegressionTree::Node &node =
            model->nodes[static_cast<std::size_t>(index)];
        if (line.tokens[2] == "split") {
            if (line.tokens.size() != 7)
                parser.fail(line,
                            "'split' takes feature threshold left right");
            node.feature = parser.integer(line, line.tokens[3]);
            if (node.feature < 0 ||
                static_cast<std::size_t>(node.feature) >= nfeatures) {
                parser.fail(line, "split feature index out of range");
            }
            node.threshold = parser.number(line, line.tokens[4]);
            node.left = parser.integer(line, line.tokens[5]);
            node.right = parser.integer(line, line.tokens[6]);
            if (node.left <= index || node.left >= count ||
                node.right <= index || node.right >= count) {
                parser.fail(line, "split children must be later nodes");
            }
        } else if (line.tokens[2] == "leaf") {
            if (line.tokens.size() != 6)
                parser.fail(line, "'leaf' takes mean stddev count");
            node.feature = -1;
            node.mean = parser.number(line, line.tokens[3]);
            node.stddev = parser.number(line, line.tokens[4]);
            node.count = parser.integer(line, line.tokens[5]);
        } else {
            parser.fail(line, "node kind must be 'split' or 'leaf', got '" +
                                  line.tokens[2] + "'");
        }
    }
    return model;
}

} // namespace

std::string
WsModel::render() const
{
    std::string out;
    out += "sos-model ";
    out += std::to_string(kFormatVersion);
    out += "\nfeatures ";
    out += std::to_string(kFeatureSchemaVersion);
    out += "\nkind ";
    out += kind();
    out += "\nuncertainty_threshold ";
    appendDouble(out, uncertaintyThreshold_);
    out += "\nnfeatures ";
    out += std::to_string(featureNames_.size());
    out += "\n";
    const LinearModel *linear = dynamic_cast<const LinearModel *>(this);
    for (std::size_t i = 0; i < featureNames_.size(); ++i) {
        out += "feature ";
        out += featureNames_[i];
        out += " ";
        appendDouble(out, linear ? linear->mean[i] : 0.0);
        out += " ";
        appendDouble(out, linear ? linear->stddev[i] : 0.0);
        out += "\n";
    }
    renderBody(out);
    out += "end\n";
    return out;
}

void
WsModel::save(const std::string &path) const
{
    std::ofstream file(path, std::ios::trunc);
    if (!file)
        throw ModelError(path + ":0: cannot open model file for writing");
    file << render();
    file.flush();
    if (!file)
        throw ModelError(path + ":0: write failed");
}

double
LinearModel::predict(const FeatureVector &features) const
{
    double out = bias;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double sd = stddev[i] > 0.0 ? stddev[i] : 1.0;
        out += weights[i] * ((features[i] - mean[i]) / sd);
    }
    return out;
}

double
LinearModel::uncertainty(const FeatureVector &features) const
{
    // Residual error, inflated by how far the query sits from the
    // training distribution in z-space (extrapolation penalty).
    double sq = 0.0;
    for (std::size_t i = 0; i < mean.size(); ++i) {
        const double sd = stddev[i] > 0.0 ? stddev[i] : 1.0;
        const double z = (features[i] - mean[i]) / sd;
        sq += z * z;
    }
    const double rms =
        mean.empty() ? 0.0 : std::sqrt(sq / static_cast<double>(mean.size()));
    return residualStd * (1.0 + rms);
}

void
LinearModel::renderBody(std::string &out) const
{
    out += "bias ";
    appendDouble(out, bias);
    out += "\n";
    for (std::size_t i = 0; i < weights.size(); ++i) {
        out += "weight ";
        out += featureNames_[i];
        out += " ";
        appendDouble(out, weights[i]);
        out += "\n";
    }
    out += "residual_std ";
    appendDouble(out, residualStd);
    out += "\n";
}

const RegressionTree::Node &
RegressionTree::descend(const FeatureVector &features) const
{
    std::size_t at = 0;
    while (!nodes[at].leaf()) {
        const Node &node = nodes[at];
        const double value = features[static_cast<std::size_t>(node.feature)];
        at = static_cast<std::size_t>(value <= node.threshold ? node.left
                                                              : node.right);
    }
    return nodes[at];
}

double
RegressionTree::predict(const FeatureVector &features) const
{
    return descend(features).mean;
}

double
RegressionTree::uncertainty(const FeatureVector &features) const
{
    return descend(features).stddev;
}

void
RegressionTree::renderBody(std::string &out) const
{
    out += "nodes ";
    out += std::to_string(nodes.size());
    out += "\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node &node = nodes[i];
        out += "node ";
        out += std::to_string(i);
        if (node.leaf()) {
            out += " leaf ";
            appendDouble(out, node.mean);
            out += " ";
            appendDouble(out, node.stddev);
            out += " ";
            out += std::to_string(node.count);
        } else {
            out += " split ";
            out += std::to_string(node.feature);
            out += " ";
            appendDouble(out, node.threshold);
            out += " ";
            out += std::to_string(node.left);
            out += " ";
            out += std::to_string(node.right);
        }
        out += "\n";
    }
}

std::unique_ptr<WsModel>
parseModel(const std::string &text, const std::string &context)
{
    Parser parser(tokenize(text), context);

    const Line &magic = parser.take("'sos-model <version>'");
    parser.expect(magic, "sos-model", 1);
    const int version = parser.integer(magic, magic.tokens[1]);
    if (version != kFormatVersion) {
        parser.fail(magic, "unsupported model format version " +
                               magic.tokens[1] + " (this build reads " +
                               std::to_string(kFormatVersion) + ")");
    }

    const Line &features = parser.take("'features <schema-version>'");
    parser.expect(features, "features", 1);
    const int schema = parser.integer(features, features.tokens[1]);
    if (schema != kFeatureSchemaVersion) {
        parser.fail(features,
                    "feature schema version mismatch: file has " +
                        features.tokens[1] + ", this build composes " +
                        std::to_string(kFeatureSchemaVersion));
    }

    const Line &kind = parser.take("'kind linear|tree'");
    parser.expect(kind, "kind", 1);
    const std::string &which = kind.tokens[1];
    if (which != "linear" && which != "tree")
        parser.fail(kind, "unknown model kind '" + which + "'");

    const Line &threshold = parser.take("'uncertainty_threshold'");
    parser.expect(threshold, "uncertainty_threshold", 1);
    const double cutoff = parser.number(threshold, threshold.tokens[1]);

    const Line &header = parser.take("'nfeatures'");
    parser.expect(header, "nfeatures", 1);
    const int declared = parser.integer(header, header.tokens[1]);
    if (declared < 1)
        parser.fail(header, "a model needs at least one feature");
    const auto nfeatures = static_cast<std::size_t>(declared);

    std::vector<std::string> names;
    std::vector<double> means;
    std::vector<double> stddevs;
    names.reserve(nfeatures);
    for (std::size_t i = 0; i < nfeatures; ++i) {
        const Line &line = parser.take("'feature'");
        parser.expect(line, "feature", 3);
        names.push_back(line.tokens[1]);
        means.push_back(parser.number(line, line.tokens[2]));
        stddevs.push_back(parser.number(line, line.tokens[3]));
    }

    std::unique_ptr<WsModel> model;
    if (which == "linear") {
        auto linear = parseLinearBody(parser, nfeatures);
        linear->mean = std::move(means);
        linear->stddev = std::move(stddevs);
        model = std::move(linear);
    } else {
        model = parseTreeBody(parser, nfeatures);
    }
    model->setFeatureNames(std::move(names));
    model->setUncertaintyThreshold(cutoff);

    const Line &end = parser.take("'end'");
    parser.expect(end, "end", 0);
    if (!parser.done())
        parser.fail(parser.take("nothing"), "trailing content after 'end'");
    return model;
}

std::unique_ptr<WsModel>
loadModel(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        throw ModelError(path + ":0: cannot open model file");
    std::ostringstream text;
    text << file.rdbuf();
    return parseModel(text.str(), path);
}

} // namespace sos::model
