/**
 * @file
 * The kernel's view of a closed-system candidate sweep.
 *
 * A closed-system experiment (batch, hierarchical, machine) owns its
 * candidate set and knows how to run every candidate from equal
 * footing -- on whichever substrate and with whichever warm-up recipe
 * it needs. The kernel drives the SAMPLE and SYMBIOS phases through
 * this interface and keeps the phase bookkeeping (profiles, measured
 * symbios WS, phase-cycle accounting, predictor evaluation) in one
 * place instead of three.
 *
 * Determinism: runCandidates() must be a pure function of the
 * candidate index (the ParallelScheduleRunner contract), so the
 * kernel's merged results are bit-identical for any worker count.
 */

#ifndef SOS_SOS_CLOSED_BACKEND_HH
#define SOS_SOS_CLOSED_BACKEND_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/parallel_runner.hh"

namespace sos {

/** Candidate sweep a closed-system adapter exposes to the kernel. */
class ClosedSweepBackend
{
  public:
    virtual ~ClosedSweepBackend() = default;

    /** Number of candidates in this experiment's sample. */
    virtual std::size_t numCandidates() const = 0;

    /** Display label of candidate @p index (profile labels). */
    virtual std::string candidateLabel(std::size_t index) const = 0;

    /**
     * Run every candidate for timeslices(index) quanta from equal
     * footing and report the merged, index-ordered results.
     */
    virtual std::vector<ParallelScheduleRunner::ScheduleRun>
    runCandidates(
        const std::function<std::uint64_t(std::size_t)> &timeslices)
        const = 0;
};

} // namespace sos

#endif // SOS_SOS_CLOSED_BACKEND_HH
