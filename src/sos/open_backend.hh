/**
 * @file
 * Engine backends for the open-system SOS kernel.
 *
 * The kernel schedules a changing pool of jobs; an EngineBackend is
 * the substrate it schedules onto. The backend owns the live machine
 * state, runs one timeslice of a chosen coschedule, draws candidate
 * coschedules over the pool, and -- the heart of the kernel's sample
 * phase -- profiles every candidate in parallel on private forks of
 * the live state and lets the kernel adopt the winner's end state.
 *
 * Two substrates implement the interface:
 *  - TimesliceBackend: one SMT core behind a TimesliceEngine (the
 *    paper's machine; Figures 5-6);
 *  - MachineBackend:   a CMP of SMT cores behind a MachineEngine
 *    (Figure 8), one coschedule group per core.
 *
 * Determinism: fork profiling is a pure function of (live state,
 * candidate), fanned out via ParallelScheduleRunner::map, so results
 * are bit-identical for any SOS_JOBS worker count.
 */

#ifndef SOS_SOS_OPEN_BACKEND_HH
#define SOS_SOS_OPEN_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/schedule_profile.hh"
#include "cpu/machine.hh"
#include "sched/schedule.hh"
#include "sim/machine_engine.hh"
#include "sim/parallel_runner.hh"
#include "sim/timeslice_engine.hh"

namespace sos {

/** One candidate coschedule of the active pool across the cores. */
struct OpenCandidate
{
    /** Pool indices assigned to each core; one entry per core. */
    std::vector<std::vector<int>> groups;

    /**
     * Per-core schedule over *positions within the core's group*
     * (0..group.size()-1); tupleAt() wraps, so any window works.
     */
    std::vector<Schedule> schedules;

    /** Display label, e.g. "{0,2}01|{1,3}01". */
    std::string label;

    /** Canonical identity (the kernel's changed-schedule check). */
    std::string key;

    /** Pool indices core @p k runs at period position @p t. */
    std::vector<int> coreTupleAt(std::size_t k, std::uint64_t t) const;
};

/** The substrate an open-system kernel run schedules onto. */
class EngineBackend
{
  public:
    virtual ~EngineBackend();

    virtual std::string name() const = 0;

    int numCores() const { return numCores_; }

    /** Hardware contexts per core (the SMT level). */
    int level() const { return level_; }

    /** Units the whole machine can run per timeslice. */
    int capacity() const { return numCores_ * level_; }

    std::uint64_t timesliceCycles() const { return timeslice_; }

    /** The live machine (per-core stat groups for manifests). */
    const Machine &machine() const { return *live_.machine; }

    /**
     * Draw up to @p count distinct candidate coschedules of a pool of
     * @p num_jobs jobs. Consumes @p rng deterministically.
     */
    virtual std::vector<OpenCandidate>
    drawCandidates(int num_jobs, int count, Rng &rng) const = 0;

    /**
     * Profiling window per candidate, in timeslices: a couple of
     * sweeps over the pool, so the sample phase can finish between
     * arrivals even for awkward pool sizes.
     */
    virtual std::uint64_t windowSlices(int num_jobs) const;

    /** The only sensible coschedule when the pool fits the machine. */
    OpenCandidate trivialCandidate(int num_jobs) const;

    /**
     * Distribute the chosen pool indices (at most capacity() of them)
     * into per-core tuples, filling cores in index order (the naive
     * scheduler's placement).
     */
    std::vector<std::vector<int>>
    spread(const std::vector<int> &chosen) const;

    /**
     * Run one live timeslice: core k runs core_tuples[k] (pool
     * indices into @p pool). Cores with empty tuples still advance,
     * evicting leftover residents. Returns machine-wide counters with
     * cycles normalized to one quantum.
     */
    PerfCounters runLiveSlice(const std::vector<Job *> &pool,
                              const std::vector<std::vector<int>>
                                  &core_tuples);

    /**
     * Profile every candidate for @p window timeslices starting at
     * period position @p offset, each on a private fork of the live
     * state (machine, pool jobs, resident contexts), fanned out on
     * @p runner. The forks are retained so the winner's end state can
     * be adopted. Profiles are index-ordered and bit-identical for
     * any worker count.
     */
    std::vector<ScheduleProfile>
    profileCandidates(const std::vector<Job *> &pool,
                      const std::vector<OpenCandidate> &candidates,
                      std::uint64_t window, std::uint64_t offset,
                      ParallelScheduleRunner &runner);

    /**
     * Make fork @p index's end state the live state and hand its job
     * copies (pool-ordered) to the caller; drops the other forks.
     */
    std::vector<std::unique_ptr<Job>> adoptFork(std::size_t index);

    /** Detach a departing job from every core. */
    void evictJob(const Job *job);

    /**
     * Configure sampled simulation on the live engines and every
     * future fork (cpu/sampling.hh). The live slices and the
     * candidate-profiling forks run at the same fidelity, so the
     * kernel's WS comparisons stay internally consistent.
     */
    void setSampling(const SampleWindows &sample);

  protected:
    /**
     * @p params describes the (possibly heterogeneous) machine; the
     * SMT level is uniform across cores (machineFor() forces it).
     */
    EngineBackend(const MachineParams &params, int level,
                  std::uint64_t timeslice_cycles);

    /** Per-core equivalence classes (all zero when homogeneous). */
    const std::vector<int> &coreClasses() const { return classes_; }

    /** True when the cores are not all identical. */
    bool heterogeneous() const;

  private:
    /** A complete runnable copy of machine + engines (+ fork jobs). */
    struct State
    {
        std::unique_ptr<Machine> machine;
        std::vector<std::unique_ptr<TimesliceEngine>> engines;
        /** Deep-copied pool jobs; empty for the live state (the
         *  kernel owns the live pool). */
        std::vector<std::unique_ptr<Job>> jobs;
    };

    /** Fork the live state against a pool snapshot (read-only). */
    State forkLive(const std::vector<Job *> &pool) const;

    int numCores_;
    int level_;
    std::vector<int> classes_; ///< core equivalence classes
    std::uint64_t timeslice_;
    SampleWindows sample_;
    State live_;
    std::vector<State> forks_; ///< retained by profileCandidates()
};

/** The paper's substrate: one SMT core (TimesliceEngine). */
class TimesliceBackend : public EngineBackend
{
  public:
    /** @p params must describe a single-core machine. */
    TimesliceBackend(const MachineParams &params,
                     std::uint64_t timeslice_cycles);

    std::string name() const override { return "smt-core"; }

    /**
     * Exactly the pre-kernel open system's candidate draw: sample
     * distinct schedules of Js(num_jobs, level, level).
     */
    std::vector<OpenCandidate>
    drawCandidates(int num_jobs, int count, Rng &rng) const override;

    /** The pre-kernel window: min(schedule period, two sweeps). */
    std::uint64_t windowSlices(int num_jobs) const override;
};

/** The CMP substrate: one coschedule group per core (Figure 8). */
class MachineBackend : public EngineBackend
{
  public:
    explicit MachineBackend(const MachineParams &params,
                            std::uint64_t timeslice_cycles);

    std::string name() const override { return "machine"; }

    /**
     * Random permutations of the pool split into near-equal
     * contiguous per-core groups, deduplicated by canonical key. On a
     * heterogeneous machine the key tags each per-core part with the
     * core's equivalence class, so placements that differ only by
     * permuting identical cores still collapse while moves across
     * classes count as distinct candidates.
     */
    std::vector<OpenCandidate>
    drawCandidates(int num_jobs, int count, Rng &rng) const override;
};

} // namespace sos

#endif // SOS_SOS_OPEN_BACKEND_HH
