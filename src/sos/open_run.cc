#include "sos/open_run.hh"

#include <algorithm>

#include "common/logging.hh"
#include "stats/trace.hh"

namespace sos {

OpenRun::OpenRun(EngineBackend &backend,
                 const SosKernel::OpenConfig &config, OpenPolicy policy,
                 SosKernel::JobFactory make_job,
                 stats::EventTrace *events)
    : backend_(backend), config_(config), policy_(policy),
      makeJob_(std::move(make_job)),
      events_(policy == OpenPolicy::Sos ? events : nullptr),
      timeslice_(backend.timesliceCycles()),
      capacity_(backend.capacity()), rng_(config.seed),
      resample_(makeResamplePolicy(config.resamplePolicy,
                                   config.baseIntervalCycles)),
      predictor_(makePredictor(config.predictor)), runner_(config.jobs)
{
}

void
OpenRun::advance(SosKernel::Phase next)
{
    SOS_ASSERT(SosKernel::legalTransition(phase_, next),
               "illegal SOS phase transition");
    phase_ = next;
}

void
OpenRun::inject(std::uint64_t arrival_cycle, int index)
{
    SOS_ASSERT(pending_.empty() ||
                   pending_.back().first <= arrival_cycle,
               "arrival cycles must be nondecreasing");
    SOS_ASSERT(phase_ != SosKernel::Phase::Done,
               "a finalized run accepts no arrivals");
    queue_.push(EventKind::JobArrival, arrival_cycle, index);
    pending_.emplace_back(arrival_cycle, index);
    ++injected_;
}

std::vector<Job *>
OpenRun::poolPointers() const
{
    std::vector<Job *> jobs;
    jobs.reserve(pool_.size());
    for (const PoolEntry &entry : pool_)
        jobs.push_back(entry.job.get());
    return jobs;
}

std::vector<int>
OpenRun::poolIndices() const
{
    std::vector<int> indices;
    indices.reserve(pool_.size());
    for (const PoolEntry &entry : pool_)
        indices.push_back(entry.arrivalIndex);
    return indices;
}

std::uint64_t
OpenRun::remainingInstructions() const
{
    std::uint64_t remaining = 0;
    for (const PoolEntry &entry : pool_) {
        const Job &job = *entry.job;
        if (job.retired() < job.sizeInstructions)
            remaining += job.sizeInstructions - job.retired();
    }
    return remaining;
}

PerfCounters
OpenRun::takeRecentCounters()
{
    PerfCounters taken = recentCounters_;
    recentCounters_.clear();
    return taken;
}

std::uint64_t
OpenRun::maxSlices() const
{
    // Generous runaway bound: the run should end when all jobs finish.
    return 2000 * static_cast<std::uint64_t>(injected_) +
           4000000000ULL / timeslice_;
}

bool
OpenRun::retire()
{
    bool any_finished = false;
    for (std::size_t i = pool_.size(); i-- > 0;) {
        Job &job = *pool_[i].job;
        if (job.retired() < job.sizeInstructions)
            continue;
        responses_.emplace_back(pool_[i].arrivalIndex,
                                now_ - job.arrivalCycle);
        backend_.evictJob(&job);
        queue_.push(EventKind::JobDeparture, now_,
                    pool_[i].arrivalIndex);
        pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
        ++completed_;
        any_finished = true;
    }
    if (any_finished)
        naive_cursor_ =
            pool_.empty() ? 0 : naive_cursor_ % pool_.size();
    return any_finished;
}

void
OpenRun::beginPhase(bool from_timer)
{
    const int n = static_cast<int>(pool_.size());
    // Start at a random point of each schedule's period: arrivals
    // restart sampling so often that always beginning at the
    // canonical first tuple would systematically starve the jobs
    // that only appear late in the period.
    phase_offset_ = rng_.next() & 0xffff;
    ++timer_generation_; // stale any outstanding backoff timer
    symbios_slice_ = 0;
    if (n <= capacity_) {
        // Trivial pool: only one sensible coschedule, nothing to
        // learn. Run it; the next membership change resamples.
        current_ = backend_.trivialCandidate(n);
        advance(SosKernel::Phase::Symbios);
        return;
    }
    window_ = backend_.windowSlices(n);
    // Spend at most about half the expected inter-arrival gap
    // sampling, so a symbios phase usually gets to run; always
    // compare at least two schedules.
    const std::uint64_t budget_slices =
        resample_->baseInterval() / (2 * timeslice_);
    const int count = static_cast<int>(std::clamp<std::uint64_t>(
        budget_slices / std::max<std::uint64_t>(1, window_), 2,
        static_cast<std::uint64_t>(config_.sampleSchedules)));
    candidates_ = backend_.drawCandidates(n, count, rng_);
    // The samplek screen thins the drawn set before any fork is
    // profiled; with no screen installed the draw is used as-is
    // (bit-identical to pre-model builds).
    if (config_.screen && candidates_.size() > 1) {
        const std::vector<std::size_t> kept =
            config_.screen(candidates_, poolPointers());
        SOS_ASSERT(!kept.empty(),
                   "the samplek screen kept no candidate");
        std::vector<OpenCandidate> screened;
        screened.reserve(kept.size());
        for (std::size_t k = 0; k < kept.size(); ++k) {
            SOS_ASSERT(kept[k] < candidates_.size(),
                       "screen index out of range");
            SOS_ASSERT(k == 0 || kept[k - 1] < kept[k],
                       "screen indices must be strictly increasing");
            screened.push_back(std::move(candidates_[kept[k]]));
        }
        candidates_ = std::move(screened);
    }
    timer_triggered_ = from_timer;
    ++sample_phases_;
    if (from_timer)
        ++timer_resamples_;
    else
        ++job_change_resamples_;
    // The window runs atomically, but never past the next
    // arrival: an imminent arrival shortens the profile the same
    // way it used to interrupt serial in-place sampling.
    if (!pending_.empty() && pending_.front().first > now_) {
        const std::uint64_t until = pending_.front().first - now_;
        window_ =
            std::min(window_, (until + timeslice_ - 1) / timeslice_);
    }
    // Nor past the advanceTo() horizon: an epoch barrier truncates
    // the window exactly like an imminent arrival. (No-op for the
    // whole-trace wrapper, whose horizon is kNoLimit.)
    if (limit_ != kNoLimit)
        window_ = std::min(window_, (limit_ - now_) / timeslice_);
    window_ = std::max<std::uint64_t>(1, window_);
    advance(SosKernel::Phase::Sample);
    queue_.push(EventKind::PhaseComplete, now_ + window_ * timeslice_);
    if (events_) {
        events_->event("sample_phase_begin")
            .field("phase", sample_phases_)
            .field("trigger", from_timer ? "timer" : "job_change")
            .field("jobs", n)
            .field("candidates",
                   static_cast<std::uint64_t>(candidates_.size()))
            .field("slices_per_candidate", window_);
    }
}

void
OpenRun::advanceTo(std::uint64_t limit)
{
    SOS_ASSERT(limit == kNoLimit || limit % timeslice_ == 0,
               "advanceTo horizon must sit on the timeslice grid");
    limit_ = limit;

    while (completed_ < injected_ && now_ < limit) {
        SOS_ASSERT(slices_ < maxSlices(),
                   "open system did not drain: unstable configuration");

        // Dispatch every event due by now.
        bool membership_changed = false;
        bool timer_due = false;
        while (!queue_.empty() && queue_.top().cycle <= now_) {
            const Event event = queue_.pop();
            switch (event.kind) {
              case EventKind::JobArrival: {
                SOS_ASSERT(!pending_.empty() &&
                               event.index == pending_.front().second,
                           "arrivals must pop in injection order");
                pending_.pop_front();
                std::unique_ptr<Job> job = makeJob_(
                    static_cast<std::size_t>(event.index));
                pool_.push_back(
                    PoolEntry{std::move(job), event.index});
                membership_changed = true;
                break;
              }
              case EventKind::BackoffTimer:
                // Only the timer of the current symbios phase counts;
                // older generations were superseded by a resample.
                if (event.generation == timer_generation_)
                    timer_due = true;
                break;
              case EventKind::JobDeparture:
              case EventKind::PhaseComplete:
                // Bookkeeping records: departures resample at the
                // retire site, phase windows complete inline.
                break;
            }
        }

        if (pool_.empty()) {
            // Idle until the next event (an arrival: timers need a
            // pool), on the timeslice grid. Every pending arrival
            // lies below the horizon (advanceTo's contract), so the
            // jump never overshoots a finite limit.
            SOS_ASSERT(!queue_.empty());
            const std::uint64_t target = queue_.top().cycle;
            now_ = (target / timeslice_ + 1) * timeslice_;
            continue;
        }

        const int n = static_cast<int>(pool_.size());

        if (policy_ == OpenPolicy::Naive) {
            // Coschedule the next `capacity` jobs in arrival-rotation
            // order, spread over the cores.
            const int count = std::min(n, capacity_);
            std::vector<int> chosen;
            chosen.reserve(static_cast<std::size_t>(count));
            for (int k = 0; k < count; ++k)
                chosen.push_back(static_cast<int>(
                    (naive_cursor_ + static_cast<std::size_t>(k)) %
                    pool_.size()));
            naive_cursor_ =
                (naive_cursor_ + static_cast<std::size_t>(count)) %
                pool_.size();
            recentCounters_ += backend_.runLiveSlice(
                poolPointers(), backend_.spread(chosen));
            now_ += timeslice_;
            ++slices_;
            jobs_in_system_integral_ += static_cast<double>(n);
            retire();
            continue;
        }

        if (membership_changed) {
            resample_->onJobChange();
            beginPhase(/*from_timer=*/false);
        } else if (timer_due && phase_ == SosKernel::Phase::Symbios &&
                   n > capacity_) {
            beginPhase(/*from_timer=*/true);
        }

        if (phase_ == SosKernel::Phase::Sample) {
            // Profile every candidate on a private fork of the live
            // state, in parallel; the whole window elapses at once.
            const std::vector<ScheduleProfile> profiles =
                backend_.profileCandidates(poolPointers(), candidates_,
                                           window_, phase_offset_,
                                           runner_);
            const int best = predictor_->best(profiles);
            const OpenCandidate &pick =
                candidates_[static_cast<std::size_t>(best)];
            const bool changed = pick.key != previousKey_;
            previousKey_ = pick.key;
            if (timer_triggered_)
                resample_->onTimerSample(changed);
            if (events_) {
                events_->event("symbios_pick")
                    .field("phase", sample_phases_)
                    .field("predictor", predictor_->name())
                    .field("pick", best)
                    .field("schedule", pick.label)
                    .field("changed", changed);
            }

            // The winner's fork ran the pool for the whole window on
            // its schedule: adopt its end state as the live state.
            std::vector<std::unique_ptr<Job>> adopted =
                backend_.adoptFork(static_cast<std::size_t>(best));
            SOS_ASSERT(adopted.size() == pool_.size());
            for (std::size_t j = 0; j < pool_.size(); ++j)
                pool_[j].job = std::move(adopted[j]);
            current_ = pick;

            now_ += window_ * timeslice_;
            slices_ += window_;
            sample_slices_ += window_;
            jobs_in_system_integral_ +=
                static_cast<double>(n) * static_cast<double>(window_);

            advance(SosKernel::Phase::Symbios);
            symbios_slice_ = 0;
            queue_.push(EventKind::BackoffTimer,
                        now_ + resample_->symbiosDuration(), -1,
                        ++timer_generation_);

            if (retire() && !pool_.empty()) {
                resample_->onJobChange();
                beginPhase(/*from_timer=*/false);
            }
            continue;
        }

        // Symbios (also covers trivial pools): run the committed
        // coschedule one timeslice at a time.
        SOS_ASSERT(phase_ == SosKernel::Phase::Symbios);
        std::vector<std::vector<int>> tuples;
        tuples.reserve(static_cast<std::size_t>(backend_.numCores()));
        for (int k = 0; k < backend_.numCores(); ++k)
            tuples.push_back(current_.coreTupleAt(
                static_cast<std::size_t>(k),
                phase_offset_ + symbios_slice_));
        recentCounters_ += backend_.runLiveSlice(poolPointers(), tuples);
        ++symbios_slice_;
        now_ += timeslice_;
        ++slices_;
        jobs_in_system_integral_ += static_cast<double>(n);

        if (retire() && !pool_.empty()) {
            resample_->onJobChange();
            beginPhase(/*from_timer=*/false);
        }
    }

    limit_ = kNoLimit;
}

void
OpenRun::finalize()
{
    SOS_ASSERT(drained(), "finalize() before the run drained");
    advance(SosKernel::Phase::Done);
}

} // namespace sos
