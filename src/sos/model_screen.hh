/**
 * @file
 * The samplek candidate screen for open-system runs.
 *
 * Builds the OpenConfig::screen function from a trained WS model
 * (sostrain output): every drawn candidate is scored from static
 * per-job signatures alone -- no simulation -- and only the top-K
 * predictions plus the candidates whose prediction uncertainty
 * exceeds the model's stored threshold are detail-profiled on forks.
 * The closed drivers implement the same policy inside
 * BatchExperiment::runScreenedSamplePhase(); this is the open-mode
 * counterpart, shared by the single-machine open system and every
 * cluster node.
 */

#ifndef SOS_SOS_MODEL_SCREEN_HH
#define SOS_SOS_MODEL_SCREEN_HH

#include <memory>
#include <string>

#include "model/model.hh"
#include "sos/kernel.hh"

namespace sos {

/**
 * A screen keeping the @p top_k best-predicted candidates plus every
 * candidate above @p model's uncertainty threshold. Candidates the
 * model cannot score (no non-empty tuples) are always kept.
 */
std::function<std::vector<std::size_t>(
    const std::vector<OpenCandidate> &, const std::vector<Job *> &)>
makeModelScreen(std::shared_ptr<const model::WsModel> ws_model,
                int top_k);

/**
 * Convenience overload: load the model from @p path first. Fatal on a
 * malformed or missing model file (the caller asked for screening; a
 * silently disabled screen would misreport what ran).
 */
std::function<std::vector<std::size_t>(
    const std::vector<OpenCandidate> &, const std::vector<Job *> &)>
makeModelScreen(const std::string &path, int top_k);

} // namespace sos

#endif // SOS_SOS_MODEL_SCREEN_HH
