#include "sos/open_backend.hh"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "metrics/weighted_speedup.hh"

namespace sos {

namespace {

/** "{a,b,c}" for a pool-index group. */
std::string
groupLabel(const std::vector<int> &group)
{
    std::ostringstream out;
    out << '{';
    for (std::size_t i = 0; i < group.size(); ++i) {
        if (i > 0)
            out << ',';
        out << group[i];
    }
    out << '}';
    return out.str();
}

/** Local-position schedule for a group of @p size jobs on an
 *  @p level-context core (the open system always swaps fully). */
Schedule
groupSchedule(int size, int level)
{
    if (size <= 0)
        return Schedule();
    if (size <= level) {
        Partition whole(1);
        for (int i = 0; i < size; ++i)
            whole[0].push_back(i);
        return Schedule::fromPartition(whole);
    }
    std::vector<int> order(static_cast<std::size_t>(size));
    std::iota(order.begin(), order.end(), 0);
    return Schedule::fromRotation(order, level, level);
}

} // namespace

std::vector<int>
OpenCandidate::coreTupleAt(std::size_t k, std::uint64_t t) const
{
    std::vector<int> tuple;
    if (k >= groups.size() || groups[k].empty() ||
        !schedules[k].valid())
        return tuple;
    for (int position : schedules[k].tupleAt(t))
        tuple.push_back(groups[k][static_cast<std::size_t>(position)]);
    return tuple;
}

EngineBackend::EngineBackend(const MachineParams &params, int level,
                             std::uint64_t timeslice_cycles)
    : numCores_(params.numCores), level_(level),
      classes_(params.coreClasses()), timeslice_(timeslice_cycles)
{
    SOS_ASSERT(params.numCores >= 1 && level >= 1,
               "backend needs at least one core and one context");
    live_.machine = std::make_unique<Machine>(params);
    for (int k = 0; k < params.numCores; ++k)
        live_.engines.push_back(std::make_unique<TimesliceEngine>(
            live_.machine->core(k), timeslice_cycles));
}

bool
EngineBackend::heterogeneous() const
{
    return std::any_of(classes_.begin(), classes_.end(),
                       [](int c) { return c != 0; });
}

EngineBackend::~EngineBackend() = default;

void
EngineBackend::setSampling(const SampleWindows &sample)
{
    sample_ = sample;
    for (auto &engine : live_.engines)
        engine->setSampling(sample_);
}

std::uint64_t
EngineBackend::windowSlices(int num_jobs) const
{
    return 2 *
           static_cast<std::uint64_t>(
               (num_jobs + capacity() - 1) / capacity());
}

OpenCandidate
EngineBackend::trivialCandidate(int num_jobs) const
{
    SOS_ASSERT(num_jobs <= capacity(),
               "trivial coschedule needs the pool to fit the machine");
    std::vector<int> everyone(static_cast<std::size_t>(num_jobs));
    std::iota(everyone.begin(), everyone.end(), 0);

    OpenCandidate candidate;
    candidate.groups = spread(everyone);
    std::ostringstream label, key;
    for (std::size_t k = 0; k < candidate.groups.size(); ++k) {
        const auto &group = candidate.groups[k];
        candidate.schedules.push_back(
            groupSchedule(static_cast<int>(group.size()), level_));
        if (k > 0)
            label << '|';
        label << groupLabel(group);
        key << groupLabel(group) << ';';
    }
    candidate.label = label.str();
    candidate.key = key.str();
    return candidate;
}

std::vector<std::vector<int>>
EngineBackend::spread(const std::vector<int> &chosen) const
{
    SOS_ASSERT(static_cast<int>(chosen.size()) <= capacity(),
               "cannot spread more jobs than contexts");
    std::vector<std::vector<int>> groups(
        static_cast<std::size_t>(numCores_));
    std::size_t cursor = 0;
    for (int k = 0; k < numCores_ && cursor < chosen.size(); ++k)
        for (int c = 0; c < level_ && cursor < chosen.size(); ++c)
            groups[static_cast<std::size_t>(k)].push_back(
                chosen[cursor++]);
    return groups;
}

PerfCounters
EngineBackend::runLiveSlice(const std::vector<Job *> &pool,
                            const std::vector<std::vector<int>>
                                &core_tuples)
{
    PerfCounters slice;
    for (int k = 0; k < numCores_; ++k) {
        std::vector<ThreadRef> units;
        if (static_cast<std::size_t>(k) < core_tuples.size())
            for (int index : core_tuples[static_cast<std::size_t>(k)])
                units.push_back(ThreadRef{
                    pool.at(static_cast<std::size_t>(index)), 0});
        slice += live_.engines[static_cast<std::size_t>(k)]
                     ->runTimeslice(units)
                     .counters;
    }
    // Cores run in parallel: machine-wide wall clock is one quantum.
    slice.cycles = timeslice_;
    return slice;
}

EngineBackend::State
EngineBackend::forkLive(const std::vector<Job *> &pool) const
{
    State fork;
    fork.machine = std::make_unique<Machine>(*live_.machine);
    fork.jobs.reserve(pool.size());
    for (const Job *job : pool)
        fork.jobs.push_back(std::make_unique<Job>(*job));
    for (int k = 0; k < numCores_; ++k) {
        auto engine = std::make_unique<TimesliceEngine>(
            fork.machine->core(k), timeslice_);
        engine->setSampling(sample_);
        std::vector<std::pair<int, ThreadRef>> resident;
        for (const auto &[slot, unit] :
             live_.engines[static_cast<std::size_t>(k)]
                 ->residentUnits()) {
            // Rebind the resident context onto the fork's job copy.
            std::size_t position = pool.size();
            for (std::size_t p = 0; p < pool.size(); ++p) {
                if (pool[p] == unit.job) {
                    position = p;
                    break;
                }
            }
            SOS_ASSERT(position < pool.size(),
                       "resident job missing from the pool snapshot");
            resident.emplace_back(
                slot, ThreadRef{fork.jobs[position].get(),
                                unit.thread});
        }
        engine->adoptResident(resident);
        fork.engines.push_back(std::move(engine));
    }
    return fork;
}

std::vector<ScheduleProfile>
EngineBackend::profileCandidates(
    const std::vector<Job *> &pool,
    const std::vector<OpenCandidate> &candidates,
    std::uint64_t window, std::uint64_t offset,
    ParallelScheduleRunner &runner)
{
    forks_.clear();
    forks_.resize(candidates.size());
    auto profiles = runner.map<ScheduleProfile>(
        candidates.size(), [&](std::size_t i) {
            State fork = forkLive(pool);
            std::vector<std::uint64_t> before;
            before.reserve(fork.jobs.size());
            for (const auto &job : fork.jobs)
                before.push_back(job->retired());

            ScheduleProfile profile;
            profile.label = candidates[i].label;
            for (std::uint64_t s = 0; s < window; ++s) {
                PerfCounters slice;
                for (int k = 0; k < numCores_; ++k) {
                    std::vector<ThreadRef> units;
                    for (int index : candidates[i].coreTupleAt(
                             static_cast<std::size_t>(k),
                             offset + s))
                        units.push_back(ThreadRef{
                            fork.jobs[static_cast<std::size_t>(index)]
                                .get(),
                            0});
                    slice +=
                        fork.engines[static_cast<std::size_t>(k)]
                            ->runTimeslice(units)
                            .counters;
                }
                slice.cycles = timeslice_;
                profile.counters += slice;
                profile.sliceIpc.push_back(slice.ipc());
                profile.sliceMixImbalance.push_back(
                    slice.mixImbalance());
            }

            std::vector<JobProgress> progress;
            progress.reserve(fork.jobs.size());
            for (std::size_t j = 0; j < fork.jobs.size(); ++j)
                progress.push_back(
                    JobProgress{fork.jobs[j]->retired() - before[j],
                                fork.jobs[j]->soloIpc});
            profile.sampleWs =
                weightedSpeedup(progress, window * timeslice_);

            forks_[i] = std::move(fork);
            return profile;
        });
    return profiles;
}

std::vector<std::unique_ptr<Job>>
EngineBackend::adoptFork(std::size_t index)
{
    SOS_ASSERT(index < forks_.size(), "adopting an unknown fork");
    State &winner = forks_[index];
    SOS_ASSERT(winner.machine != nullptr, "adopting an empty fork");
    live_.machine = std::move(winner.machine);
    live_.engines = std::move(winner.engines);
    std::vector<std::unique_ptr<Job>> jobs = std::move(winner.jobs);
    forks_.clear();
    return jobs;
}

void
EngineBackend::evictJob(const Job *job)
{
    for (auto &engine : live_.engines)
        engine->evictJob(job);
}

TimesliceBackend::TimesliceBackend(const MachineParams &params,
                                   std::uint64_t timeslice_cycles)
    : EngineBackend(params, params.coreParams(0).numContexts,
                    timeslice_cycles)
{
    SOS_ASSERT(params.numCores == 1,
               "the timeslice backend is single-core");
}

std::vector<OpenCandidate>
TimesliceBackend::drawCandidates(int num_jobs, int count,
                                 Rng &rng) const
{
    // Same draw as the pre-kernel open system: distinct schedules of
    // Js(n, level, level) over the pool positions.
    const ScheduleSpace space(num_jobs, level(), level());
    std::vector<Schedule> schedules = space.sample(count, rng);

    std::vector<int> everyone(static_cast<std::size_t>(num_jobs));
    std::iota(everyone.begin(), everyone.end(), 0);
    std::vector<OpenCandidate> candidates;
    candidates.reserve(schedules.size());
    for (Schedule &schedule : schedules) {
        OpenCandidate candidate;
        candidate.groups = {everyone};
        candidate.label = schedule.label();
        candidate.key = schedule.key();
        candidate.schedules = {std::move(schedule)};
        candidates.push_back(std::move(candidate));
    }
    return candidates;
}

std::uint64_t
TimesliceBackend::windowSlices(int num_jobs) const
{
    return std::min<std::uint64_t>(
        ScheduleSpace(num_jobs, level(), level()).periodTimeslices(),
        EngineBackend::windowSlices(num_jobs));
}

MachineBackend::MachineBackend(const MachineParams &params,
                               std::uint64_t timeslice_cycles)
    : EngineBackend(params, params.coreParams(0).numContexts,
                    timeslice_cycles)
{
}

std::vector<OpenCandidate>
MachineBackend::drawCandidates(int num_jobs, int count,
                               Rng &rng) const
{
    const int cores = numCores();
    std::vector<OpenCandidate> candidates;
    std::set<std::string> seen;
    // Rejection-sample distinct group assignments; the space can be
    // smaller than the ask near the capacity boundary.
    const int max_attempts = count * 8 + 8;
    for (int attempt = 0;
         attempt < max_attempts &&
         static_cast<int>(candidates.size()) < count;
         ++attempt) {
        std::vector<int> perm(static_cast<std::size_t>(num_jobs));
        std::iota(perm.begin(), perm.end(), 0);
        for (std::size_t i = perm.size() - 1; i > 0; --i)
            std::swap(perm[i],
                      perm[rng.below(static_cast<std::uint64_t>(i) +
                                     1)]);

        // Near-equal contiguous split of the permutation.
        const int base = num_jobs / cores;
        const int extra = num_jobs % cores;
        OpenCandidate candidate;
        std::size_t cursor = 0;
        for (int k = 0; k < cores; ++k) {
            const int take = base + (k < extra ? 1 : 0);
            std::vector<int> group(
                perm.begin() + static_cast<std::ptrdiff_t>(cursor),
                perm.begin() +
                    static_cast<std::ptrdiff_t>(cursor) + take);
            cursor += static_cast<std::size_t>(take);
            candidate.schedules.push_back(
                groupSchedule(take, level()));
            candidate.groups.push_back(std::move(group));
        }

        // Canonical key: per-core identity strings, sorted so that
        // permuting identical cores does not create a "new"
        // candidate. On a heterogeneous machine each part carries the
        // core's equivalence class, so moving a group across classes
        // changes the key (the placement matters there).
        const bool hetero = heterogeneous();
        std::vector<std::string> parts;
        std::ostringstream label;
        for (std::size_t k = 0; k < candidate.groups.size(); ++k) {
            // Partition groups coschedule everyone at once, so member
            // order is irrelevant; rotating groups are identified by
            // their rotation order.
            std::vector<int> members = candidate.groups[k];
            if (static_cast<int>(members.size()) <= level())
                std::sort(members.begin(), members.end());
            std::string part = groupLabel(members) +
                               candidate.schedules[k].key();
            if (hetero)
                part = std::to_string(coreClasses()[k]) + ':' + part;
            parts.push_back(std::move(part));
            if (k > 0)
                label << '|';
            label << groupLabel(candidate.groups[k]);
        }
        std::sort(parts.begin(), parts.end());
        std::ostringstream key;
        for (const std::string &part : parts)
            key << part << ';';
        candidate.key = key.str();
        candidate.label = label.str();
        if (!seen.insert(candidate.key).second)
            continue;
        candidates.push_back(std::move(candidate));
    }
    SOS_ASSERT(!candidates.empty(),
               "machine backend drew no candidates");
    return candidates;
}

} // namespace sos
