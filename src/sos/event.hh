/**
 * @file
 * The SOS kernel's deterministic event queue.
 *
 * Every kernel-visible occurrence -- a job arriving, a job departing,
 * the backoff timer expiring, a phase window completing -- is an Event
 * with a simulated cycle. The queue orders events by (cycle, sequence
 * number): the sequence number is assigned at push time, so two events
 * scheduled for the same cycle pop in the order they were scheduled,
 * independent of heap internals, worker count or host. This is what
 * makes the open-system run a pure function of its inputs.
 *
 * Timer events carry a generation: re-entering the symbios phase
 * schedules a fresh timer and bumps the generation, so an older timer
 * that is still queued pops as stale and is ignored instead of
 * triggering a spurious resample.
 */

#ifndef SOS_SOS_EVENT_HH
#define SOS_SOS_EVENT_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace sos {

/** What happened (or is scheduled to happen). */
enum class EventKind
{
    JobArrival,    ///< pregenerated arrival enters the pool
    JobDeparture,  ///< a job retired its last instruction
    BackoffTimer,  ///< the resample timer expired
    PhaseComplete, ///< the current phase's window elapsed
};

/** One scheduled occurrence. */
struct Event
{
    std::uint64_t cycle = 0; ///< simulated cycle it fires at
    std::uint64_t seq = 0;   ///< push order; total tie-break
    EventKind kind = EventKind::PhaseComplete;
    int index = -1;                 ///< e.g. arrival-trace index
    std::uint64_t generation = 0;   ///< timer staleness check
};

/** Min-heap of events ordered by (cycle, seq); fully deterministic. */
class EventQueue
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Schedule an event; returns its sequence number. */
    std::uint64_t
    push(EventKind kind, std::uint64_t cycle, int index = -1,
         std::uint64_t generation = 0)
    {
        Event event;
        event.cycle = cycle;
        event.seq = nextSeq_++;
        event.kind = kind;
        event.index = index;
        event.generation = generation;
        heap_.push_back(event);
        std::push_heap(heap_.begin(), heap_.end(), After{});
        return event.seq;
    }

    /** The earliest scheduled event. */
    const Event &
    top() const
    {
        SOS_ASSERT(!heap_.empty(), "popping an empty event queue");
        return heap_.front();
    }

    /** Remove and return the earliest scheduled event. */
    Event
    pop()
    {
        SOS_ASSERT(!heap_.empty(), "popping an empty event queue");
        std::pop_heap(heap_.begin(), heap_.end(), After{});
        Event event = heap_.back();
        heap_.pop_back();
        return event;
    }

  private:
    /** Heap predicate: a fires after b. */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.cycle != b.cycle)
                return a.cycle > b.cycle;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sos

#endif // SOS_SOS_EVENT_HH
