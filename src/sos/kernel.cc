#include "sos/kernel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sos/open_run.hh"

namespace sos {

bool
SosKernel::legalTransition(Phase from, Phase to)
{
    switch (from) {
      case Phase::Idle:
        return to == Phase::Sample || to == Phase::Symbios ||
               to == Phase::Done;
      case Phase::Sample:
        // Sample -> Sample: an arrival due at the phase boundary
        // supersedes a scheduled-but-not-yet-run sample window, just
        // as arrivals interrupted in-place sampling before the kernel.
        return to == Phase::Symbios || to == Phase::Sample;
      case Phase::Symbios:
        return to == Phase::Sample || to == Phase::Symbios ||
               to == Phase::Done;
      case Phase::Done:
        return false;
    }
    return false;
}

void
SosKernel::advance(Phase next)
{
    SOS_ASSERT(legalTransition(phase_, next),
               "illegal SOS phase transition");
    phase_ = next;
}

void
SosKernel::runSamplePhase(const ClosedSweepBackend &backend,
                          const TimeslicesFn &timeslices)
{
    SOS_ASSERT(profiles_.empty(), "sample phase already ran");
    advance(Phase::Sample);

    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        backend.runCandidates(timeslices);
    SOS_ASSERT(runs.size() == backend.numCandidates(),
               "backend returned a partial sweep");

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ParallelScheduleRunner::ScheduleRun &result = runs[i];
        ScheduleProfile profile;
        profile.label = backend.candidateLabel(i);
        profile.counters = result.run.total;
        profile.sliceIpc = result.run.sliceIpc;
        profile.sliceMixImbalance = result.run.sliceMixImbalance;
        profile.sampleWs = result.ws;
        profiles_.push_back(std::move(profile));
        sampleCycles_ += result.run.cycles;
    }
}

void
SosKernel::runSamplePhaseScreened(
    const ClosedSweepBackend &backend, const TimeslicesFn &timeslices,
    const std::vector<std::size_t> &shortlist,
    std::vector<ScheduleProfile> synthetic)
{
    SOS_ASSERT(profiles_.empty(), "sample phase already ran");
    SOS_ASSERT(!shortlist.empty(),
               "the samplek screen kept no candidate");
    SOS_ASSERT(shortlist.size() == backend.numCandidates(),
               "backend/shortlist size mismatch");
    advance(Phase::Sample);

    profiles_ = std::move(synthetic);
    for (ScheduleProfile &profile : profiles_)
        profile.detailed = false;

    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        backend.runCandidates(timeslices);
    SOS_ASSERT(runs.size() == backend.numCandidates(),
               "backend returned a partial sweep");

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const std::size_t full = shortlist[i];
        SOS_ASSERT(full < profiles_.size(),
                   "shortlist index out of range");
        SOS_ASSERT(i == 0 || shortlist[i - 1] < full,
                   "shortlist must be strictly increasing");
        const ParallelScheduleRunner::ScheduleRun &result = runs[i];
        ScheduleProfile profile;
        profile.label = backend.candidateLabel(i);
        profile.counters = result.run.total;
        profile.sliceIpc = result.run.sliceIpc;
        profile.sliceMixImbalance = result.run.sliceMixImbalance;
        profile.sampleWs = result.ws;
        profile.detailed = true;
        profiles_[full] = std::move(profile);
        sampleCycles_ += result.run.cycles;
    }
}

void
SosKernel::runSymbiosValidation(const ClosedSweepBackend &backend,
                                const TimeslicesFn &timeslices)
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    SOS_ASSERT(symbiosWs_.empty(), "symbios validation already ran");
    advance(Phase::Symbios);

    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        backend.runCandidates(timeslices);
    SOS_ASSERT(runs.size() == backend.numCandidates(),
               "backend returned a partial sweep");
    for (const ParallelScheduleRunner::ScheduleRun &result : runs)
        symbiosWs_.push_back(result.ws);

    advance(Phase::Done);
}

double
SosKernel::bestWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::max_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
SosKernel::worstWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::min_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
SosKernel::averageWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    double total = 0.0;
    for (double ws : symbiosWs_)
        total += ws;
    return total / static_cast<double>(symbiosWs_.size());
}

int
SosKernel::predictedIndex(const Predictor &predictor) const
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    // Under the samplek screen, only detailed profiles carry the
    // counters predictors read; score those and map the winner back
    // to its full candidate index.
    bool screened = false;
    for (const ScheduleProfile &profile : profiles_)
        screened = screened || !profile.detailed;
    if (!screened)
        return predictor.best(profiles_);

    std::vector<ScheduleProfile> detailed;
    std::vector<int> full_index;
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
        if (!profiles_[i].detailed)
            continue;
        detailed.push_back(profiles_[i]);
        full_index.push_back(static_cast<int>(i));
    }
    SOS_ASSERT(!detailed.empty(), "no detailed profile to score");
    return full_index[static_cast<std::size_t>(
        predictor.best(detailed))];
}

double
SosKernel::wsOfPredictor(const Predictor &predictor) const
{
    SOS_ASSERT(!symbiosWs_.empty(), "run the symbios validation first");
    return symbiosWs_[static_cast<std::size_t>(
        predictedIndex(predictor))];
}

OpenSystemResult
SosKernel::runOpen(EngineBackend &backend, const OpenConfig &config,
                   const std::vector<JobArrival> &trace,
                   OpenPolicy policy, const JobFactory &make_job,
                   stats::EventTrace *events)
{
    SOS_ASSERT(!trace.empty());
    SOS_ASSERT(phase_ == Phase::Idle && profiles_.empty(),
               "a kernel instance runs once");

    // Preload the whole arrival trace and drain it in one step: this
    // replays the exact pre-OpenRun operation sequence.
    OpenRun run(backend, config, policy, make_job, events);
    for (std::size_t i = 0; i < trace.size(); ++i)
        run.inject(trace[i].arrivalCycle, static_cast<int>(i));
    run.advanceTo(OpenRun::kNoLimit);
    run.finalize();
    phase_ = run.phase();

    OpenSystemResult result;
    result.responseByArrival.assign(trace.size(), 0);
    for (const auto &[index, response] : run.responses())
        result.responseByArrival[static_cast<std::size_t>(index)] =
            response;
    result.completed = static_cast<int>(run.completed());
    double total_response = 0.0;
    for (std::uint64_t r : result.responseByArrival)
        total_response += static_cast<double>(r);
    result.meanResponseCycles =
        total_response / static_cast<double>(trace.size());
    result.meanJobsInSystem =
        run.slicesRun() > 0
            ? run.jobsInSystemIntegral() /
                  static_cast<double>(run.slicesRun())
            : 0.0;
    result.totalCycles = run.now();
    result.sampleCycles = run.sampleSlices() * backend.timesliceCycles();
    result.samplePhases = run.samplePhases();
    result.resamplesOnJobChange = run.resamplesOnJobChange();
    result.resamplesOnTimer = run.resamplesOnTimer();
    return result;
}

} // namespace sos
