#include "sos/kernel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/resample_policy.hh"
#include "sim/parallel_runner.hh"
#include "stats/trace.hh"

namespace sos {

void
SosKernel::advance(Phase next)
{
    bool legal = false;
    switch (phase_) {
      case Phase::Idle:
        legal = next == Phase::Sample || next == Phase::Symbios ||
                next == Phase::Done;
        break;
      case Phase::Sample:
        // Sample -> Sample: an arrival due at the phase boundary
        // supersedes a scheduled-but-not-yet-run sample window, just
        // as arrivals interrupted in-place sampling before the kernel.
        legal = next == Phase::Symbios || next == Phase::Sample;
        break;
      case Phase::Symbios:
        legal = next == Phase::Sample || next == Phase::Symbios ||
                next == Phase::Done;
        break;
      case Phase::Done:
        legal = false;
        break;
    }
    SOS_ASSERT(legal, "illegal SOS phase transition");
    phase_ = next;
}

void
SosKernel::runSamplePhase(const ClosedSweepBackend &backend,
                          const TimeslicesFn &timeslices)
{
    SOS_ASSERT(profiles_.empty(), "sample phase already ran");
    advance(Phase::Sample);

    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        backend.runCandidates(timeslices);
    SOS_ASSERT(runs.size() == backend.numCandidates(),
               "backend returned a partial sweep");

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ParallelScheduleRunner::ScheduleRun &result = runs[i];
        ScheduleProfile profile;
        profile.label = backend.candidateLabel(i);
        profile.counters = result.run.total;
        profile.sliceIpc = result.run.sliceIpc;
        profile.sliceMixImbalance = result.run.sliceMixImbalance;
        profile.sampleWs = result.ws;
        profiles_.push_back(std::move(profile));
        sampleCycles_ += result.run.cycles;
    }
}

void
SosKernel::runSymbiosValidation(const ClosedSweepBackend &backend,
                                const TimeslicesFn &timeslices)
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    SOS_ASSERT(symbiosWs_.empty(), "symbios validation already ran");
    advance(Phase::Symbios);

    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        backend.runCandidates(timeslices);
    SOS_ASSERT(runs.size() == backend.numCandidates(),
               "backend returned a partial sweep");
    for (const ParallelScheduleRunner::ScheduleRun &result : runs)
        symbiosWs_.push_back(result.ws);

    advance(Phase::Done);
}

double
SosKernel::bestWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::max_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
SosKernel::worstWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::min_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
SosKernel::averageWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    double total = 0.0;
    for (double ws : symbiosWs_)
        total += ws;
    return total / static_cast<double>(symbiosWs_.size());
}

int
SosKernel::predictedIndex(const Predictor &predictor) const
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    return predictor.best(profiles_);
}

double
SosKernel::wsOfPredictor(const Predictor &predictor) const
{
    SOS_ASSERT(!symbiosWs_.empty(), "run the symbios validation first");
    return symbiosWs_[static_cast<std::size_t>(
        predictedIndex(predictor))];
}

namespace {

/** One job currently in the open system. */
struct PoolEntry
{
    std::unique_ptr<Job> job;
    int arrivalIndex = 0;
};

std::vector<Job *>
poolPointers(const std::vector<PoolEntry> &pool)
{
    std::vector<Job *> jobs;
    jobs.reserve(pool.size());
    for (const PoolEntry &entry : pool)
        jobs.push_back(entry.job.get());
    return jobs;
}

} // namespace

OpenSystemResult
SosKernel::runOpen(EngineBackend &backend, const OpenConfig &config,
                   const std::vector<JobArrival> &trace,
                   OpenPolicy policy, const JobFactory &make_job,
                   stats::EventTrace *events)
{
    SOS_ASSERT(!trace.empty());
    SOS_ASSERT(phase_ == Phase::Idle && profiles_.empty(),
               "a kernel instance runs once");
    const std::uint64_t timeslice = backend.timesliceCycles();
    const int capacity = backend.capacity();

    Rng rng(config.seed);
    const std::unique_ptr<ResampleTimer> resample =
        makeResamplePolicy(config.resamplePolicy,
                           config.baseIntervalCycles);
    const std::unique_ptr<Predictor> predictor =
        makePredictor(config.predictor);
    ParallelScheduleRunner runner(config.jobs);

    // Preload the whole arrival trace; cycles are nondecreasing, so
    // arrivals pop in trace order.
    for (std::size_t i = 0; i < trace.size(); ++i)
        queue_.push(EventKind::JobArrival, trace[i].arrivalCycle,
                    static_cast<int>(i));

    OpenSystemResult result;
    result.responseByArrival.assign(trace.size(), 0);

    std::vector<PoolEntry> pool;
    std::size_t next_arrival = 0; ///< trace index; next-arrival peeks
    std::uint64_t now = 0;
    std::size_t completed = 0;
    std::size_t naive_cursor = 0;
    double jobs_in_system_integral = 0.0;
    std::uint64_t slices = 0;
    std::uint64_t sample_slices = 0;
    int sample_phases = 0;
    int job_change_resamples = 0;
    int timer_resamples = 0;

    // Symbios state.
    OpenCandidate current;
    std::string previous_key;
    std::uint64_t symbios_slice = 0;
    std::uint64_t timer_generation = 0;

    // Sample state.
    std::vector<OpenCandidate> candidates;
    std::uint64_t window = 1;
    std::uint64_t phase_offset = 0;
    bool timer_triggered = false;

    // Generous runaway bound: the run should end when all jobs finish.
    const std::uint64_t max_slices =
        2000 * trace.size() + 4000000000ULL / timeslice;

    const auto retire = [&]() {
        bool any_finished = false;
        for (std::size_t i = pool.size(); i-- > 0;) {
            Job &job = *pool[i].job;
            if (job.retired() < job.sizeInstructions)
                continue;
            result.responseByArrival[static_cast<std::size_t>(
                pool[i].arrivalIndex)] = now - job.arrivalCycle;
            backend.evictJob(&job);
            queue_.push(EventKind::JobDeparture, now,
                        pool[i].arrivalIndex);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
            ++completed;
            any_finished = true;
        }
        if (any_finished)
            naive_cursor =
                pool.empty() ? 0 : naive_cursor % pool.size();
        return any_finished;
    };

    const auto beginPhase = [&](bool from_timer) {
        const int n = static_cast<int>(pool.size());
        // Start at a random point of each schedule's period: arrivals
        // restart sampling so often that always beginning at the
        // canonical first tuple would systematically starve the jobs
        // that only appear late in the period.
        phase_offset = rng.next() & 0xffff;
        ++timer_generation; // stale any outstanding backoff timer
        symbios_slice = 0;
        if (n <= capacity) {
            // Trivial pool: only one sensible coschedule, nothing to
            // learn. Run it; the next membership change resamples.
            current = backend.trivialCandidate(n);
            advance(Phase::Symbios);
            return;
        }
        window = backend.windowSlices(n);
        // Spend at most about half the expected inter-arrival gap
        // sampling, so a symbios phase usually gets to run; always
        // compare at least two schedules.
        const std::uint64_t budget_slices =
            resample->baseInterval() / (2 * timeslice);
        const int count = static_cast<int>(std::clamp<std::uint64_t>(
            budget_slices / std::max<std::uint64_t>(1, window), 2,
            static_cast<std::uint64_t>(config.sampleSchedules)));
        candidates = backend.drawCandidates(n, count, rng);
        timer_triggered = from_timer;
        ++sample_phases;
        if (from_timer)
            ++timer_resamples;
        else
            ++job_change_resamples;
        // The window runs atomically, but never past the next
        // arrival: an imminent arrival shortens the profile the same
        // way it used to interrupt serial in-place sampling.
        if (next_arrival < trace.size() &&
            trace[next_arrival].arrivalCycle > now) {
            const std::uint64_t until =
                trace[next_arrival].arrivalCycle - now;
            window = std::min(
                window, (until + timeslice - 1) / timeslice);
        }
        window = std::max<std::uint64_t>(1, window);
        advance(Phase::Sample);
        queue_.push(EventKind::PhaseComplete,
                    now + window * timeslice);
        if (events) {
            events->event("sample_phase_begin")
                .field("phase", sample_phases)
                .field("trigger", from_timer ? "timer" : "job_change")
                .field("jobs", n)
                .field("candidates",
                       static_cast<std::uint64_t>(candidates.size()))
                .field("slices_per_candidate", window);
        }
    };

    while (completed < trace.size()) {
        SOS_ASSERT(slices < max_slices,
                   "open system did not drain: unstable configuration");

        // Dispatch every event due by now.
        bool membership_changed = false;
        bool timer_due = false;
        while (!queue_.empty() && queue_.top().cycle <= now) {
            const Event event = queue_.pop();
            switch (event.kind) {
              case EventKind::JobArrival: {
                SOS_ASSERT(event.index ==
                               static_cast<int>(next_arrival),
                           "arrivals must pop in trace order");
                std::unique_ptr<Job> job = make_job(next_arrival);
                pool.push_back(PoolEntry{
                    std::move(job),
                    static_cast<int>(next_arrival)});
                ++next_arrival;
                membership_changed = true;
                break;
              }
              case EventKind::BackoffTimer:
                // Only the timer of the current symbios phase counts;
                // older generations were superseded by a resample.
                if (event.generation == timer_generation)
                    timer_due = true;
                break;
              case EventKind::JobDeparture:
              case EventKind::PhaseComplete:
                // Bookkeeping records: departures resample at the
                // retire site, phase windows complete inline.
                break;
            }
        }

        if (pool.empty()) {
            // Idle until the next event (an arrival: timers need a
            // pool), on the timeslice grid.
            SOS_ASSERT(!queue_.empty());
            const std::uint64_t target = queue_.top().cycle;
            now = (target / timeslice + 1) * timeslice;
            continue;
        }

        const int n = static_cast<int>(pool.size());

        if (policy == OpenPolicy::Naive) {
            // Coschedule the next `capacity` jobs in arrival-rotation
            // order, spread over the cores.
            const int count = std::min(n, capacity);
            std::vector<int> chosen;
            chosen.reserve(static_cast<std::size_t>(count));
            for (int k = 0; k < count; ++k)
                chosen.push_back(static_cast<int>(
                    (naive_cursor + static_cast<std::size_t>(k)) %
                    pool.size()));
            naive_cursor =
                (naive_cursor + static_cast<std::size_t>(count)) %
                pool.size();
            backend.runLiveSlice(poolPointers(pool),
                                 backend.spread(chosen));
            now += timeslice;
            ++slices;
            jobs_in_system_integral += static_cast<double>(n);
            retire();
            continue;
        }

        if (membership_changed) {
            resample->onJobChange();
            beginPhase(/*from_timer=*/false);
        } else if (timer_due && phase_ == Phase::Symbios &&
                   n > capacity) {
            beginPhase(/*from_timer=*/true);
        }

        if (phase_ == Phase::Sample) {
            // Profile every candidate on a private fork of the live
            // state, in parallel; the whole window elapses at once.
            const std::vector<ScheduleProfile> profiles =
                backend.profileCandidates(poolPointers(pool),
                                          candidates, window,
                                          phase_offset, runner);
            const int best = predictor->best(profiles);
            const OpenCandidate &pick =
                candidates[static_cast<std::size_t>(best)];
            const bool changed = pick.key != previous_key;
            previous_key = pick.key;
            if (timer_triggered)
                resample->onTimerSample(changed);
            if (events) {
                events->event("symbios_pick")
                    .field("phase", sample_phases)
                    .field("predictor", predictor->name())
                    .field("pick", best)
                    .field("schedule", pick.label)
                    .field("changed", changed);
            }

            // The winner's fork ran the pool for the whole window on
            // its schedule: adopt its end state as the live state.
            std::vector<std::unique_ptr<Job>> adopted =
                backend.adoptFork(static_cast<std::size_t>(best));
            SOS_ASSERT(adopted.size() == pool.size());
            for (std::size_t j = 0; j < pool.size(); ++j)
                pool[j].job = std::move(adopted[j]);
            current = pick;

            now += window * timeslice;
            slices += window;
            sample_slices += window;
            jobs_in_system_integral +=
                static_cast<double>(n) *
                static_cast<double>(window);

            advance(Phase::Symbios);
            symbios_slice = 0;
            queue_.push(EventKind::BackoffTimer,
                        now + resample->symbiosDuration(), -1,
                        ++timer_generation);

            if (retire() && !pool.empty()) {
                resample->onJobChange();
                beginPhase(/*from_timer=*/false);
            }
            continue;
        }

        // Symbios (also covers trivial pools): run the committed
        // coschedule one timeslice at a time.
        SOS_ASSERT(phase_ == Phase::Symbios);
        std::vector<std::vector<int>> tuples;
        tuples.reserve(static_cast<std::size_t>(backend.numCores()));
        for (int k = 0; k < backend.numCores(); ++k)
            tuples.push_back(current.coreTupleAt(
                static_cast<std::size_t>(k),
                phase_offset + symbios_slice));
        backend.runLiveSlice(poolPointers(pool), tuples);
        ++symbios_slice;
        now += timeslice;
        ++slices;
        jobs_in_system_integral += static_cast<double>(n);

        if (retire() && !pool.empty()) {
            resample->onJobChange();
            beginPhase(/*from_timer=*/false);
        }
    }

    advance(Phase::Done);

    result.completed = static_cast<int>(completed);
    double total_response = 0.0;
    for (std::uint64_t r : result.responseByArrival)
        total_response += static_cast<double>(r);
    result.meanResponseCycles =
        total_response / static_cast<double>(trace.size());
    result.meanJobsInSystem =
        slices > 0
            ? jobs_in_system_integral / static_cast<double>(slices)
            : 0.0;
    result.totalCycles = now;
    result.sampleCycles = sample_slices * timeslice;
    result.samplePhases = sample_phases;
    result.resamplesOnJobChange = job_change_resamples;
    result.resamplesOnTimer = timer_resamples;
    return result;
}

} // namespace sos
