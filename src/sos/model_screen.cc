#include "sos/model_screen.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.hh"
#include "model/features.hh"
#include "sched/job.hh"

namespace sos {

namespace {

/**
 * The candidate's coschedule tuple structure in pool indices: each
 * core's per-position tuples mapped through its group. This is the
 * same tuple set the live run would cycle through, so the features
 * match what composeScheduleFeatures sees in the closed drivers.
 */
std::vector<std::vector<int>>
candidateTuples(const OpenCandidate &candidate)
{
    std::vector<std::vector<int>> tuples;
    for (std::size_t k = 0; k < candidate.schedules.size(); ++k) {
        const std::vector<int> &group = candidate.groups[k];
        if (group.empty())
            continue;
        for (const std::vector<int> &positions :
             candidate.schedules[k].tuples()) {
            std::vector<int> tuple;
            tuple.reserve(positions.size());
            for (int pos : positions)
                tuple.push_back(
                    group[static_cast<std::size_t>(pos) % group.size()]);
            if (!tuple.empty())
                tuples.push_back(std::move(tuple));
        }
    }
    return tuples;
}

} // namespace

std::function<std::vector<std::size_t>(
    const std::vector<OpenCandidate> &, const std::vector<Job *> &)>
makeModelScreen(std::shared_ptr<const model::WsModel> ws_model,
                int top_k)
{
    SOS_ASSERT(ws_model != nullptr);
    SOS_ASSERT(top_k > 0, "samplek must keep at least one candidate");
    return [ws_model, top_k](
               const std::vector<OpenCandidate> &candidates,
               const std::vector<Job *> &pool)
               -> std::vector<std::size_t> {
        std::vector<model::ThreadSignature> signatures;
        signatures.reserve(pool.size());
        for (const Job *job : pool)
            signatures.push_back(model::makeThreadSignature(
                static_cast<int>(job->id()), job->profile(),
                job->soloIpc));

        const std::size_t count = candidates.size();
        std::vector<double> predicted(count, 0.0);
        std::vector<bool> keep(count, false);
        for (std::size_t i = 0; i < count; ++i) {
            const std::vector<std::vector<int>> tuples =
                candidateTuples(candidates[i]);
            if (tuples.empty()) {
                // Nothing to score; never drop what we cannot judge.
                keep[i] = true;
                predicted[i] =
                    -std::numeric_limits<double>::infinity();
                continue;
            }
            const model::FeatureVector features =
                model::composeScheduleFeatures(signatures, tuples);
            predicted[i] = ws_model->predict(features);
            if (ws_model->uncertainty(features) >
                ws_model->uncertaintyThreshold())
                keep[i] = true;
        }

        std::vector<std::size_t> order(count);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return predicted[a] > predicted[b];
                         });
        const std::size_t keep_top =
            std::min(count, static_cast<std::size_t>(top_k));
        for (std::size_t i = 0; i < keep_top; ++i)
            keep[order[i]] = true;

        std::vector<std::size_t> kept;
        for (std::size_t i = 0; i < count; ++i) {
            if (keep[i])
                kept.push_back(i);
        }
        return kept;
    };
}

std::function<std::vector<std::size_t>(
    const std::vector<OpenCandidate> &, const std::vector<Job *> &)>
makeModelScreen(const std::string &path, int top_k)
{
    std::shared_ptr<const model::WsModel> ws_model;
    try {
        ws_model = model::loadModel(path);
    } catch (const model::ModelError &error) {
        fatal("samplek screen: ", error.what());
    }
    return makeModelScreen(std::move(ws_model), top_k);
}

} // namespace sos
