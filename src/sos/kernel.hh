/**
 * @file
 * The event-driven SOS kernel: one sample/symbios state machine.
 *
 * Before this kernel existed, four drivers (batch, hierarchical,
 * machine, open system) each re-implemented the paper's
 * Sample-Optimize-Symbios loop. The kernel owns the loop once:
 *
 *  - a Phase state machine (Idle -> Sample -> Symbios -> ... -> Done)
 *    whose transitions are validated in one place;
 *  - a deterministic EventQueue (job arrivals, departures, backoff-
 *    timer expiries, phase completions) driving the open-system run;
 *  - the phase bookkeeping every driver needs: candidate profiles,
 *    measured symbios WS, sample-phase cycle accounting, predictor
 *    evaluation.
 *
 * Closed-system experiments adapt through ClosedSweepBackend: the
 * kernel runs their SAMPLE and SYMBIOS phases and keeps the results;
 * the experiments only translate configuration and publish stats.
 * The open system adapts through EngineBackend: the kernel replays an
 * arrival trace, sampling candidate coschedules on parallel forks of
 * the live machine state and adopting the predicted winner.
 *
 * Determinism: every decision is a pure function of (config, trace,
 * candidate index). Fork profiling fans out through
 * ParallelScheduleRunner, so runs are bit-identical for any SOS_JOBS
 * worker count; the event queue breaks same-cycle ties by scheduling
 * order (see event.hh).
 */

#ifndef SOS_SOS_KERNEL_HH
#define SOS_SOS_KERNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "core/schedule_profile.hh"
#include "sim/open_system.hh"
#include "sos/closed_backend.hh"
#include "sos/event.hh"
#include "sos/open_backend.hh"

namespace sos {

namespace stats {
class EventTrace;
} // namespace stats

/** The shared sample/symbios state machine behind all four drivers. */
class SosKernel
{
  public:
    /** Where the state machine is. */
    enum class Phase
    {
        Idle,    ///< nothing scheduled yet
        Sample,  ///< profiling candidate coschedules
        Symbios, ///< running the predicted best coschedule
        Done,    ///< the run is complete
    };

    /** Timeslices to run candidate @p index for. */
    using TimeslicesFn = std::function<std::uint64_t(std::size_t)>;

    SosKernel() = default;
    SosKernel(const SosKernel &) = delete;
    SosKernel &operator=(const SosKernel &) = delete;
    // Movable so experiments owning a kernel can be returned by
    // value; stat groups bind to kernel storage only after the owner
    // reaches its final location.
    SosKernel(SosKernel &&) = default;
    SosKernel &operator=(SosKernel &&) = default;

    Phase phase() const { return phase_; }

    /**
     * True when @p from -> @p to is a legal phase transition; shared
     * with OpenRun, which owns its own copy of the state machine.
     */
    static bool legalTransition(Phase from, Phase to);

    /** @name Closed mode (batch / hierarchical / machine drivers) @{ */

    /**
     * SAMPLE: profile every backend candidate from equal footing and
     * record one ScheduleProfile per candidate plus the cycles spent.
     */
    void runSamplePhase(const ClosedSweepBackend &backend,
                        const TimeslicesFn &timeslices);

    /**
     * SAMPLE with the samplek screen: detail-simulate only the
     * shortlisted candidates and fill the rest with @p synthetic
     * profiles (detailed = false, model-predicted sampleWs).
     *
     * @p backend and @p timeslices are indexed by shortlist position;
     * @p shortlist maps each position to its full candidate index and
     * must be strictly increasing. @p synthetic must hold one profile
     * per full candidate; shortlisted entries are overwritten with the
     * detailed measurements. Only detailed runs charge sample cycles.
     */
    void runSamplePhaseScreened(const ClosedSweepBackend &backend,
                                const TimeslicesFn &timeslices,
                                const std::vector<std::size_t> &shortlist,
                                std::vector<ScheduleProfile> synthetic);

    /**
     * SYMBIOS: run every candidate for the validation interval and
     * record its measured weighted speedup. Requires a completed
     * sample phase; ends the state machine (closed runs validate all
     * candidates instead of committing to one).
     */
    void runSymbiosValidation(const ClosedSweepBackend &backend,
                              const TimeslicesFn &timeslices);

    /** Sample-phase profiles, in candidate order. */
    const std::vector<ScheduleProfile> &profiles() const
    {
        return profiles_;
    }

    /** Measured symbios WS per candidate. */
    const std::vector<double> &symbiosWs() const { return symbiosWs_; }

    /** Simulated cycles spent profiling candidates. */
    std::uint64_t samplePhaseCycles() const { return sampleCycles_; }

    /**
     * Stable storage for samplePhaseCycles(), so stat groups can
     * bind() to it (the kernel must outlive any dump).
     */
    const std::uint64_t &
    samplePhaseCyclesStorage() const
    {
        return sampleCycles_;
    }

    /** @name Summary statistics over the symbios runs @{ */
    double bestWs() const;
    double worstWs() const;
    double averageWs() const; ///< the oblivious-scheduler expectation
    /** @} */

    /** Candidate index the predictor picks from the profiles. */
    int predictedIndex(const Predictor &predictor) const;

    /** Symbios WS attained by trusting the given predictor. */
    double wsOfPredictor(const Predictor &predictor) const;

    /** @} */

    /** @name Open mode (arrival-driven job pool) @{ */

    /** Open-system knobs the kernel needs (substrate-independent). */
    struct OpenConfig
    {
        /** Maximum candidates profiled per sample phase. */
        int sampleSchedules = 10;

        /** Predictor the symbios phase trusts. */
        std::string predictor = "IPC";

        /** Resample-timer policy name (makeResamplePolicy()). */
        std::string resamplePolicy = "backoff";

        /** Base symbios interval in cycles (the backoff seed). */
        std::uint64_t baseIntervalCycles = 1;

        /** Seed of the kernel's private decision stream. */
        std::uint64_t seed = 0;

        /** Sweep worker count (SimConfig::jobs semantics). */
        int jobs = 0;

        /**
         * Optional samplek screen: given the drawn candidates and
         * the resident pool (pool order), return the indices of the
         * candidates worth detail-profiling, strictly increasing and
         * non-empty. Unset (the default) profiles every candidate,
         * bit-identical to pre-model builds. See makeModelScreen().
         */
        std::function<std::vector<std::size_t>(
            const std::vector<OpenCandidate> &,
            const std::vector<Job *> &)>
            screen;
    };

    /** Materialize the job of arrival @p index, ready to run. */
    using JobFactory =
        std::function<std::unique_ptr<Job>(std::size_t index)>;

    /**
     * Replay @p trace on @p backend under @p policy until every job
     * completes. Arrivals, departures, backoff-timer expiries and
     * phase completions flow through the deterministic event queue;
     * under OpenPolicy::Sos each sample phase profiles candidates on
     * parallel forks of the live state (see EngineBackend) and adopts
     * the predictor's pick. When @p events is non-null the kernel
     * appends "sample_phase_begin" and "symbios_pick" decisions.
     *
     * The loop itself lives in OpenRun (sos/open_run.hh); this wrapper
     * injects the whole trace up front and drains it, which replays
     * the exact pre-OpenRun operation sequence (golden-pinned).
     *
     * A kernel instance runs once; use a fresh one per run.
     */
    OpenSystemResult runOpen(EngineBackend &backend,
                             const OpenConfig &config,
                             const std::vector<JobArrival> &trace,
                             OpenPolicy policy,
                             const JobFactory &make_job,
                             stats::EventTrace *events = nullptr);

    /** @} */

  private:
    /** Move the state machine, asserting the transition is legal. */
    void advance(Phase next);

    Phase phase_ = Phase::Idle;

    std::vector<ScheduleProfile> profiles_;
    std::vector<double> symbiosWs_;
    std::uint64_t sampleCycles_ = 0;
};

} // namespace sos

#endif // SOS_SOS_KERNEL_HH
