/**
 * @file
 * A resumable open-system run: the kernel's arrival-driven loop as an
 * object that can be advanced in bounded steps.
 *
 * SosKernel::runOpen() replays a complete arrival trace to the end in
 * one call. The cluster layer needs the same loop sliced differently:
 * each node advances to a barrier cycle (the dispatch epoch), receives
 * whatever arrivals the dispatcher routed to it, and resumes -- all
 * while staying bit-identical to a serial execution. OpenRun is that
 * loop with its state (pool, event queue, phase machine, resample
 * timers, RNG) lifted from locals into members:
 *
 *   - inject() appends one arrival (cycles must be nondecreasing);
 *   - advanceTo() runs the event loop until the virtual clock reaches
 *     the limit or every injected job has completed;
 *   - finalize() asserts the run drained and closes the phase machine.
 *
 * With every arrival injected up front and no limit, the sequence of
 * operations is exactly runOpen()'s -- the wrapper in kernel.cc stays
 * byte-identical to the pre-refactor loop (golden-pinned). Under a
 * finite limit the only new behaviour is the epoch cap: an atomic
 * sample window never crosses the advanceTo() horizon, truncated the
 * same way an imminent arrival always truncated it.
 *
 * Determinism: an OpenRun is a pure function of (config, injected
 * arrivals). It performs no synchronization, so a cluster may advance
 * distinct nodes on distinct ThreadPool workers between barriers and
 * still produce bit-identical results for any SOS_JOBS.
 */

#ifndef SOS_SOS_OPEN_RUN_HH
#define SOS_SOS_OPEN_RUN_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "core/predictor.hh"
#include "core/resample_policy.hh"
#include "cpu/perf_counters.hh"
#include "sim/parallel_runner.hh"
#include "sos/event.hh"
#include "sos/kernel.hh"
#include "sos/open_backend.hh"

namespace sos {

/** One open-system kernel run, advanced in barrier-bounded steps. */
class OpenRun
{
  public:
    /** No horizon: advance until every injected job completes. */
    static constexpr std::uint64_t kNoLimit = ~0ULL;

    OpenRun(EngineBackend &backend, const SosKernel::OpenConfig &config,
            OpenPolicy policy, SosKernel::JobFactory make_job,
            stats::EventTrace *events = nullptr);

    OpenRun(const OpenRun &) = delete;
    OpenRun &operator=(const OpenRun &) = delete;

    /**
     * Queue the arrival of global job @p index at @p arrival_cycle.
     * Cycles must be nondecreasing across calls; the job itself is
     * materialized by the factory when the arrival event fires.
     */
    void inject(std::uint64_t arrival_cycle, int index);

    /**
     * Run the event loop while the clock is below @p limit and
     * injected jobs remain. @p limit must be a multiple of the
     * backend's timeslice (or kNoLimit); every injected arrival must
     * lie below the limit of the advanceTo() call that consumes it.
     */
    void advanceTo(std::uint64_t limit);

    /** All injected jobs completed (trivially true before inject). */
    bool drained() const { return completed_ == injected_; }

    /** Close the phase machine; requires drained(). */
    void finalize();

    SosKernel::Phase phase() const { return phase_; }
    std::uint64_t now() const { return now_; }
    std::size_t injected() const { return injected_; }
    std::size_t completed() const { return completed_; }

    /** Jobs currently resident (arrived, not yet finished). */
    int poolSize() const { return static_cast<int>(pool_.size()); }

    /** Global index of every resident job, in pool order. */
    std::vector<int> poolIndices() const;

    /** Instructions the resident jobs still have to retire. */
    std::uint64_t remainingInstructions() const;

    /** (global index, response cycles) per completion, retire order. */
    const std::vector<std::pair<int, std::uint64_t>> &
    responses() const
    {
        return responses_;
    }

    /** @name Accumulators backing OpenSystemResult / node stats @{ */
    std::uint64_t slicesRun() const { return slices_; }
    std::uint64_t sampleSlices() const { return sample_slices_; }
    int samplePhases() const { return sample_phases_; }
    int resamplesOnJobChange() const { return job_change_resamples_; }
    int resamplesOnTimer() const { return timer_resamples_; }
    double jobsInSystemIntegral() const
    {
        return jobs_in_system_integral_;
    }
    /** @} */

    /**
     * Machine counters accumulated over live slices since the last
     * takeRecentCounters() -- the measured signature the cluster's
     * signature-aware dispatcher reads at each barrier. (Sample-phase
     * forks profile into ScheduleProfiles instead; live symbios slices
     * dominate, which is what a node "looks like" to new work.)
     */
    PerfCounters takeRecentCounters();

  private:
    void advance(SosKernel::Phase next);
    bool retire();
    void beginPhase(bool from_timer);
    std::uint64_t maxSlices() const;

    /** One resident job. */
    struct PoolEntry
    {
        std::unique_ptr<Job> job;
        int arrivalIndex = 0;
    };

    std::vector<Job *> poolPointers() const;

    EngineBackend &backend_;
    SosKernel::OpenConfig config_;
    OpenPolicy policy_;
    SosKernel::JobFactory makeJob_;
    stats::EventTrace *events_;

    std::uint64_t timeslice_;
    int capacity_;

    Rng rng_;
    std::unique_ptr<ResampleTimer> resample_;
    std::unique_ptr<Predictor> predictor_;
    ParallelScheduleRunner runner_;

    SosKernel::Phase phase_ = SosKernel::Phase::Idle;
    EventQueue queue_;
    std::vector<PoolEntry> pool_;
    /** Injected, not yet arrived: (cycle, global index), FIFO. */
    std::deque<std::pair<std::uint64_t, int>> pending_;
    std::vector<std::pair<int, std::uint64_t>> responses_;

    std::uint64_t limit_ = kNoLimit; ///< horizon of the current step
    std::uint64_t now_ = 0;
    std::size_t injected_ = 0;
    std::size_t completed_ = 0;
    std::size_t naive_cursor_ = 0;
    double jobs_in_system_integral_ = 0.0;
    std::uint64_t slices_ = 0;
    std::uint64_t sample_slices_ = 0;
    int sample_phases_ = 0;
    int job_change_resamples_ = 0;
    int timer_resamples_ = 0;

    // Symbios state.
    OpenCandidate current_;
    std::string previousKey_;
    std::uint64_t symbios_slice_ = 0;
    std::uint64_t timer_generation_ = 0;

    // Sample state.
    std::vector<OpenCandidate> candidates_;
    std::uint64_t window_ = 1;
    std::uint64_t phase_offset_ = 0;
    bool timer_triggered_ = false;

    PerfCounters recentCounters_;
};

} // namespace sos

#endif // SOS_SOS_OPEN_RUN_HH
