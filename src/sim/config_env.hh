/**
 * @file
 * Shared environment and command-line configuration plumbing.
 *
 * Every bench harness and the sossim CLI accept the same overrides:
 *
 *   environment   SOS_CYCLE_SCALE, SOS_SEED, SOS_JOBS (worker
 *                 threads), SOS_SNAPSHOT (0 disables the snapshot
 *                 fast path), SOS_TRACE_SAMPLE (keep every Nth
 *                 sample-phase trace group), SOS_MACHINE_CONFIG
 *                 (machine description file; see configs/), SOS_OUT
 *                 (manifest path), SOS_TRACE (decision-trace path),
 *                 SOS_BENCH_SWEEP (wall-clock timing report path),
 *                 SOS_BENCH_CORE (core-loop microbench report path),
 *                 SOS_BENCH_CLUSTER (fig9 scaling-curve report path)
 *   command line  --set key=value (repeated), --jobs N,
 *                 --machine-config FILE, --out FILE.json,
 *                 --trace FILE.jsonl, --bench-sweep FILE.json,
 *                 --bench-core FILE.json, --bench-cluster FILE.json
 *
 * This module is the one place that parsing lives; reporting.hh is
 * again purely about table formatting.
 */

#ifndef SOS_SIM_CONFIG_ENV_HH
#define SOS_SIM_CONFIG_ENV_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

/**
 * Read the standard environment overrides used by every bench binary:
 * SOS_CYCLE_SCALE (cycle scale divisor), SOS_SEED, and SOS_JOBS
 * (sweep worker threads).
 */
SimConfig benchConfigFromEnv();

/** The run-output destinations, from flags or environment. */
struct OutputPaths
{
    std::string manifest; ///< --out / SOS_OUT; empty = no manifest
    std::string trace;    ///< --trace / SOS_TRACE; empty = no trace
    /**
     * --bench-sweep / SOS_BENCH_SWEEP; empty = no timing report.
     * Wall-clock timing lives in its own file (never the manifest):
     * manifests stay bit-comparable across hosts and worker counts.
     */
    std::string benchSweep;
    /**
     * --bench-core / SOS_BENCH_CORE; empty = skip. When set, the
     * harness runs the fixed core-loop microbench at exit and writes
     * its cycles/sec report here (host timing, never the manifest).
     */
    std::string benchCore;

    /**
     * --bench-cluster / SOS_BENCH_CLUSTER; empty = skip. Only the
     * fig9 cluster bench consumes it: the host-thread scaling curve
     * (wall-clock per worker count) is written here, never to the
     * manifest.
     */
    std::string benchCluster;
};

/** Resolve SOS_OUT / SOS_TRACE / SOS_BENCH_SWEEP when no flags given. */
OutputPaths outputPathsFromEnv();

/** Everything a bench binary's command line can configure. */
struct BenchOptions
{
    SimConfig config;
    OutputPaths out;
};

/**
 * Parse a bench harness command line: repeated --set key=value,
 * --jobs N, --out FILE, --trace FILE, --bench-sweep FILE.
 * Environment overrides are applied first, so flags win. Unknown
 * arguments are fatal().
 */
BenchOptions parseBenchArgs(int argc, char **argv);

} // namespace sos

#endif // SOS_SIM_CONFIG_ENV_HH
