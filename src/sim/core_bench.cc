#include "core_bench.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "sched/job.hh"
#include "stats/json.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

/** The SMT levels the microbench sweeps, smallest first. */
constexpr std::array<int, CoreBenchResult::numLevels> benchLevels = {
    1, 2, 4, 6};

/** Fixed workload rotation; seeds are fixed too (see runCoreBench). */
constexpr std::array<const char *, 6> benchWorkloads = {
    "EP", "FP", "MG", "GCC", "GO", "WAVE"};

} // namespace

CoreBenchResult
runCoreBench(std::uint64_t cycles_per_level)
{
    using clock = std::chrono::steady_clock;
    CoreBenchResult result;
    const auto sweep_start = clock::now();

    for (int li = 0; li < CoreBenchResult::numLevels; ++li) {
        const int level = benchLevels[static_cast<std::size_t>(li)];
        CoreParams params;
        params.numContexts = level;
        Machine machine(params, MemParams{});
        SmtCore &core = machine.core(0);

        // The same fixed bindings as the micro_simulator component
        // benchmark: library workloads with constant seeds, so the
        // simulated-side numbers are a pure function of the model.
        std::vector<std::unique_ptr<Job>> jobs;
        for (int t = 0; t < level; ++t) {
            jobs.push_back(std::make_unique<Job>(
                static_cast<std::uint32_t>(t + 1),
                WorkloadLibrary::instance().get(
                    benchWorkloads[static_cast<std::size_t>(t) %
                                   benchWorkloads.size()]),
                0xb0b0 + static_cast<std::uint64_t>(t), 1, false));
            ThreadBinding binding;
            binding.gen = &jobs.back()->generator(0);
            binding.asid = jobs.back()->asid();
            core.attachThread(t, binding);
        }

        PerfCounters pc;
        const auto start = clock::now();
        core.run(cycles_per_level, pc);
        const double elapsed =
            std::chrono::duration<double>(clock::now() - start).count();

        CoreBenchLevel &entry =
            result.levels[static_cast<std::size_t>(li)];
        entry.contexts = level;
        entry.cycles = pc.cycles;
        entry.retired = pc.retired;
        entry.ipc = pc.ipc();
        entry.elapsedSeconds = elapsed;
        entry.cyclesPerSec =
            elapsed > 0.0 ? static_cast<double>(pc.cycles) / elapsed
                          : 0.0;
        entry.retiredPerSec =
            elapsed > 0.0 ? static_cast<double>(pc.retired) / elapsed
                          : 0.0;
    }

    result.elapsedSeconds =
        std::chrono::duration<double>(clock::now() - sweep_start)
            .count();
    return result;
}

void
writeCoreBenchFile(const std::string &path, const std::string &tool,
                   const CoreBenchResult &result)
{
    std::string document;
    stats::JsonWriter json(&document);
    json.beginObject();
    json.key("schema");
    json.string("sos.bench-core");
    json.key("schema_version");
    json.number(1);
    json.key("tool");
    json.string(tool);
    json.key("elapsed_seconds");
    json.number(result.elapsedSeconds);
    json.key("levels");
    json.beginArray();
    for (const CoreBenchLevel &level : result.levels) {
        json.beginObject();
        json.key("contexts");
        json.number(static_cast<std::int64_t>(level.contexts));
        json.key("cycles");
        json.number(static_cast<std::int64_t>(level.cycles));
        json.key("retired");
        json.number(static_cast<std::int64_t>(level.retired));
        json.key("ipc");
        json.number(level.ipc);
        json.key("elapsed_seconds");
        json.number(level.elapsedSeconds);
        json.key("cycles_per_sec");
        json.number(level.cyclesPerSec);
        json.key("retired_per_sec");
        json.number(level.retiredPerSec);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    SOS_ASSERT(json.complete());
    document += '\n';

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open bench-core output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok =
        written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to bench-core output '", path, "'");
}

} // namespace sos
