#include "params_io.hh"

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace sos {

namespace {

/** Typed accessor for one configurable field. */
struct Field
{
    const char *key;
    const char *description;
    std::function<void(SimConfig &, const std::string &)> set;
    std::function<std::string(const SimConfig &)> get;
};

// The typed parsers throw instead of fatal()ing so that
// tryApplyOverride can hand the message back to callers that have
// their own error context (the machine-config parser prepends
// file:line); applyOverride turns the exception back into fatal().
std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    // strtoull wraps negatives around; no unsigned value spells '-'.
    if (end == value.c_str() || *end != '\0' ||
        value.find('-') != std::string::npos) {
        throw std::invalid_argument("value for " + key +
                                    " is not an unsigned integer: '" +
                                    value + "'");
    }
    return parsed;
}

int
parseInt(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        throw std::invalid_argument("value for " + key +
                                    " is not an integer: '" + value +
                                    "'");
    }
    return static_cast<int>(parsed);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    throw std::invalid_argument("value for " + key +
                                " is not a boolean: '" + value + "'");
}

#define SOS_FIELD_U64(path, doc)                                            \
    Field{#path, doc,                                                       \
          [](SimConfig &c, const std::string &v) {                          \
              c.path = parseU64(#path, v);                                  \
          },                                                                \
          [](const SimConfig &c) { return std::to_string(c.path); }}

#define SOS_FIELD_U32(path, doc)                                            \
    Field{#path, doc,                                                       \
          [](SimConfig &c, const std::string &v) {                          \
              c.path = static_cast<std::uint32_t>(parseU64(#path, v));      \
          },                                                                \
          [](const SimConfig &c) { return std::to_string(c.path); }}

#define SOS_FIELD_INT(path, doc)                                            \
    Field{#path, doc,                                                       \
          [](SimConfig &c, const std::string &v) {                          \
              c.path = parseInt(#path, v);                                  \
          },                                                                \
          [](const SimConfig &c) { return std::to_string(c.path); }}

#define SOS_FIELD_BOOL(path, doc)                                           \
    Field{#path, doc,                                                       \
          [](SimConfig &c, const std::string &v) {                          \
              c.path = parseBool(#path, v);                                 \
          },                                                                \
          [](const SimConfig &c) {                                          \
              return std::string(c.path ? "1" : "0");                       \
          }}

const std::vector<Field> &
fields()
{
    static const std::vector<Field> table = {
        // Experiment harness.
        SOS_FIELD_U64(cycleScale, "paper cycles per simulated cycle"),
        SOS_FIELD_U64(symbiosSimCycles,
                      "symbios-phase length (simulated cycles)"),
        SOS_FIELD_U64(seed, "master seed"),
        SOS_FIELD_INT(sampleSchedules,
                      "schedules profiled per sample phase"),
        SOS_FIELD_INT(samplePeriods,
                      "schedule periods per profiled candidate"),
        SOS_FIELD_INT(jobs,
                      "sweep worker threads (0 = SOS_JOBS/auto)"),
        SOS_FIELD_BOOL(snapshot,
                       "share sweep warmups via snapshot forks "
                       "(bit-identical; 0 = legacy path)"),
        SOS_FIELD_U64(traceSample,
                      "keep every Nth sample-phase trace group "
                      "(observability only)"),
        SOS_FIELD_U64(calibWarmupCycles, "calibration warmup"),
        SOS_FIELD_U64(calibMeasureCycles, "calibration measurement"),
        Field{"sample",
              "sampled simulation windows U:W:M (fast-forward:warm:"
              "measure simulated cycles; 'off' = full detail)",
              [](SimConfig &c, const std::string &v) {
                  c.sample = parseSampleWindows(v);
              },
              [](const SimConfig &c) {
                  return renderSampleWindows(c.sample);
              }},
        SOS_FIELD_INT(samplek,
                      "detail-simulate only the model's top-K sample "
                      "candidates plus uncertain ones (0 = screen off)"),
        Field{"model",
              "trained WS model file for the learned predictor/"
              "dispatcher and samplek ('' = none)",
              [](SimConfig &c, const std::string &v) {
                  c.modelPath = v;
              },
              [](const SimConfig &c) { return c.modelPath; }},
        // Core.
        SOS_FIELD_INT(core.fetchWidth, "instructions fetched per cycle"),
        SOS_FIELD_INT(core.fetchThreads, "threads fetched per cycle"),
        SOS_FIELD_INT(core.fetchQueueSize, "per-context fetch buffer"),
        SOS_FIELD_INT(core.frontendDelay, "fetch-to-dispatch stages"),
        SOS_FIELD_INT(core.mispredictRedirect,
                      "redirect cycles after branch resolution"),
        SOS_FIELD_INT(core.dispatchWidth, "dispatch width"),
        SOS_FIELD_INT(core.commitWidth, "commit width"),
        SOS_FIELD_INT(core.intQueueSize, "integer issue queue entries"),
        SOS_FIELD_INT(core.fpQueueSize, "FP issue queue entries"),
        SOS_FIELD_INT(core.intRenameRegs, "shared INT rename registers"),
        SOS_FIELD_INT(core.fpRenameRegs, "shared FP rename registers"),
        SOS_FIELD_INT(core.robSize, "shared reorder-buffer entries"),
        SOS_FIELD_INT(core.numIntUnits, "integer ALUs"),
        SOS_FIELD_INT(core.fpAddPipes, "FP add pipelines"),
        SOS_FIELD_INT(core.fpMulPipes, "FP multiply pipelines"),
        SOS_FIELD_INT(core.numLsPorts, "load/store ports"),
        SOS_FIELD_INT(core.intAluLat, "integer ALU latency"),
        SOS_FIELD_INT(core.intMultLat, "integer multiply latency"),
        SOS_FIELD_INT(core.fpAddLat, "FP add latency"),
        SOS_FIELD_INT(core.fpMultLat, "FP multiply latency"),
        SOS_FIELD_INT(core.fpDivLat, "FP divide latency"),
        SOS_FIELD_INT(core.l1dHitLat, "load-to-use latency on L1 hit"),
        SOS_FIELD_INT(core.predictorBits,
                      "log2 branch-predictor entries"),
        SOS_FIELD_BOOL(core.roundRobinFetch,
                       "round-robin fetch instead of ICOUNT"),
        // Memory.
        SOS_FIELD_U32(mem.l1i.sizeBytes, "L1I capacity (bytes)"),
        SOS_FIELD_U32(mem.l1i.assoc, "L1I associativity"),
        SOS_FIELD_U32(mem.l1d.sizeBytes, "L1D capacity (bytes)"),
        SOS_FIELD_U32(mem.l1d.assoc, "L1D associativity"),
        SOS_FIELD_U32(mem.l2.sizeBytes, "L2 capacity (bytes)"),
        SOS_FIELD_U32(mem.l2.assoc, "L2 associativity"),
        SOS_FIELD_U32(mem.l2HitLatency, "extra cycles for an L2 hit"),
        SOS_FIELD_U32(mem.memLatency, "extra cycles for an L2 miss"),
        SOS_FIELD_U32(mem.tlbMissLatency, "TLB miss penalty"),
        SOS_FIELD_BOOL(mem.prefetch.enabled, "stride prefetcher"),
        SOS_FIELD_INT(mem.prefetch.degree, "prefetch degree"),
        SOS_FIELD_INT(mem.prefetch.confidenceThreshold,
                      "stride confidence threshold"),
        SOS_FIELD_INT(mem.prefetch.tableBits,
                      "log2 prefetcher table entries"),
    };
    return table;
}

#undef SOS_FIELD_U64
#undef SOS_FIELD_U32
#undef SOS_FIELD_INT
#undef SOS_FIELD_BOOL

} // namespace

std::vector<ParamInfo>
configurableParams()
{
    const SimConfig defaults;
    std::vector<ParamInfo> out;
    out.reserve(fields().size());
    for (const Field &field : fields())
        out.push_back(
            {field.key, field.get(defaults), field.description});
    return out;
}

bool
tryApplyOverride(SimConfig &config, const std::string &key,
                 const std::string &value, std::string &error)
{
    for (const Field &field : fields()) {
        if (key == field.key) {
            try {
                field.set(config, value);
            } catch (const std::invalid_argument &err) {
                error = err.what();
                return false;
            }
            return true;
        }
    }
    error = "unknown configuration key '" + key +
            "' (see `sossim params` for the full list)";
    return false;
}

void
applyOverride(SimConfig &config, const std::string &assignment)
{
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("override must look like key=value, got '", assignment,
              "'");
    std::string error;
    if (!tryApplyOverride(config, assignment.substr(0, eq),
                          assignment.substr(eq + 1), error)) {
        fatal(error);
    }
}

void
applyOverrides(SimConfig &config,
               const std::vector<std::string> &assignments)
{
    for (const std::string &assignment : assignments)
        applyOverride(config, assignment);
}

std::string
renderConfig(const SimConfig &config)
{
    std::ostringstream os;
    for (const Field &field : fields())
        os << field.key << "=" << field.get(config) << "\n";
    return os.str();
}

SampleWindows
parseSampleWindows(const std::string &value)
{
    if (value == "off" || value == "0")
        return SampleWindows{};
    const std::size_t first = value.find(':');
    const std::size_t second =
        first == std::string::npos ? first : value.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos ||
        value.find(':', second + 1) != std::string::npos)
        fatal("value for sample must be U:W:M (fast-forward:warm:"
              "measure simulated cycles) or 'off', got '", value, "'");
    SampleWindows sample;
    try {
        sample.fastForward =
            parseU64("sample (U)", value.substr(0, first));
        sample.warm =
            parseU64("sample (W)", value.substr(first + 1,
                                                second - first - 1));
        sample.measure =
            parseU64("sample (M)", value.substr(second + 1));
    } catch (const std::invalid_argument &err) {
        fatal(err.what());
    }
    if (!sample.enabled()) {
        // 0:W:M is full detail in awkward clothing; make the caller
        // say what they mean.
        if (sample.detailed() > 0)
            fatal("sample=", value, " has no fast-forward window; "
                  "use 'off' for full detail");
        return SampleWindows{};
    }
    if (sample.measure == 0)
        fatal("sample=", value, " fast-forwards but never measures; "
              "the M window must be positive");
    return sample;
}

std::string
renderSampleWindows(const SampleWindows &sample)
{
    if (!sample.enabled())
        return "off";
    std::ostringstream os;
    os << sample.fastForward << ":" << sample.warm << ":"
       << sample.measure;
    return os.str();
}

std::vector<std::pair<std::string, std::string>>
configPairs(const SimConfig &config)
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(fields().size());
    for (const Field &field : fields()) {
        // The sweep worker count, the snapshot fast path and the trace
        // sampling stride are host execution/observability strategy,
        // not simulation configuration: results are bit-identical
        // across all of them, and the manifest must be too.
        if (std::string("jobs") == field.key ||
            std::string("snapshot") == field.key ||
            std::string("traceSample") == field.key)
            continue;
        // Sampling windows change what the counters mean, so they are
        // recorded -- but only when enabled, keeping pre-sampling
        // golden manifests byte-stable.
        if (std::string("sample") == field.key &&
            !config.sample.enabled())
            continue;
        // Same contract for the model knobs: recorded when active,
        // omitted when off so golden manifests stay byte-stable.
        if (std::string("samplek") == field.key && config.samplek == 0)
            continue;
        if (std::string("model") == field.key &&
            config.modelPath.empty())
            continue;
        out.emplace_back(field.key, field.get(config));
    }
    return out;
}

} // namespace sos
