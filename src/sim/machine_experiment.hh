/**
 * @file
 * Machine-level (CMP-of-SMT-cores) SOS experiment.
 *
 * Lifts the paper's single-core sample/symbios methodology to a whole
 * machine: sample distinct *machine* schedules -- a thread-to-core
 * allocation plus a per-core coschedule sequence each -- profile every
 * candidate for full periods, then run each for the symbios duration
 * and measure the machine-wide weighted speedup. Predictors judge the
 * profiles exactly as on one core (the counters sum over cores), which
 * is the machine-level SOS the multicore figure reports.
 *
 * The same sample-phase data also feeds the thread-to-core *policy*
 * comparison: a ThreadToCorePolicy fixes only the allocation, and the
 * experiment measures the symbios WS over that allocation's per-core
 * schedule choices -- what an OS choosing placements without (naive,
 * random), with coarse (balanced-icount), or with full (synpa) symbiosis
 * information would achieve.
 *
 * Every candidate runs on a private Machine rebuilt from the spec, so
 * the sweep fans out deterministically (ParallelScheduleRunner's
 * contract): results are a pure function of the candidate index,
 * bit-identical for any SOS_JOBS.
 */

#ifndef SOS_SIM_MACHINE_EXPERIMENT_HH
#define SOS_SIM_MACHINE_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "core/schedule_profile.hh"
#include "core/thread_to_core.hh"
#include "cpu/machine.hh"
#include "sched/jobmix.hh"
#include "sched/machine_schedule.hh"
#include "sim/machine_engine.hh"
#include "sim/parallel_runner.hh"
#include "sim/sim_config.hh"
#include "sos/kernel.hh"

namespace sos {

namespace stats {
class EventTrace;
class Group;
} // namespace stats

/** Declarative description of one machine experiment Jm(X,C,Y,Z). */
struct MachineExperimentSpec
{
    std::string label; ///< e.g. "Jm(8,2,2,2)"

    /** Single-threaded workloads, one per job (X entries). */
    std::vector<std::string> workloads;

    int numCores = 2; ///< C: SMT cores sharing the L2
    int level = 2;    ///< Y: per-core multithreading level
    int swap = 2;     ///< Z: jobs replaced per core per timeslice

    /** X: runnable jobs (= schedulable units; all single-threaded). */
    int numJobs() const { return static_cast<int>(workloads.size()); }

    /** Materialize the jobmix (fresh jobs with deterministic seeds). */
    JobMix makeMix(std::uint64_t seed) const;
};

/** The multicore-figure sweep: 8 jobs on 2 and on 4 two-way cores. */
const std::vector<MachineExperimentSpec> &machineExperiments();

/** Runs the sample and symbios phases of one machine experiment. */
class MachineExperiment
{
  public:
    /** Outcome of evaluating one thread-to-core allocation policy. */
    struct PolicyResult
    {
        std::string policy;       ///< registry key
        Partition allocation;     ///< the partition the policy chose
        std::string allocationLabel; ///< e.g. "{0,1,2,3}{4,5,6,7}"
        double bestWs = 0.0; ///< best symbios WS over the allocation
        double avgWs = 0.0;  ///< mean symbios WS over the allocation
        int schedulesRun = 0; ///< per-core schedule combinations run
    };

    MachineExperiment(const MachineExperimentSpec &spec,
                      const SimConfig &config);

    /** Sample phase: draw and profile distinct machine schedules. */
    void runSamplePhase();

    /**
     * Symbios validation: run every sampled machine schedule for the
     * symbios duration and record its measured machine-wide WS. Also
     * replays the best-WS candidate on a persistent stats machine so
     * publishStats() can expose live per-core cache counters.
     *
     * @param symbios_cycles Override; 0 uses the config default.
     */
    void runSymbiosValidation(std::uint64_t symbios_cycles = 0);

    /**
     * Evaluate a thread-to-core policy: let it pick an allocation
     * (from solo IPCs and the sample-phase coschedule measurements),
     * then measure the symbios WS of every per-core schedule choice
     * under that fixed allocation. Requires a completed sample phase;
     * results accumulate for publishStats()/recordTrace().
     */
    const PolicyResult &
    evaluatePolicy(const std::string &name,
                   std::uint64_t symbios_cycles = 0);

    const MachineExperimentSpec &spec() const { return spec_; }
    const SimConfig &config() const { return config_; }
    const MachineScheduleSpace &space() const { return space_; }
    JobMix &mix() { return mix_; }

    /** The machine every candidate runs on (per-core params). */
    const MachineParams &machineParams() const { return machineParams_; }

    /** Per-core equivalence classes (empty = homogeneous). */
    const std::vector<int> &coreClasses() const { return coreClasses_; }

    const std::vector<MachineSchedule> &schedules() const
    {
        return schedules_;
    }
    const std::vector<ScheduleProfile> &profiles() const
    {
        return kernel_.profiles();
    }

    /** Simulated machine cycles spent in the sample phase. */
    std::uint64_t
    samplePhaseCycles() const
    {
        return kernel_.samplePhaseCycles();
    }

    /** Measured symbios-phase WS per sampled machine schedule. */
    const std::vector<double> &
    symbiosWs() const
    {
        return kernel_.symbiosWs();
    }

    /** @name Summary statistics over the symbios runs @{ */
    double bestWs() const { return kernel_.bestWs(); }
    double worstWs() const { return kernel_.worstWs(); }
    /** The oblivious expectation. */
    double averageWs() const { return kernel_.averageWs(); }
    /** @} */

    /** Index of the candidate the predictor picks from the profiles. */
    int
    predictedIndex(const Predictor &predictor) const
    {
        return kernel_.predictedIndex(predictor);
    }

    /** Symbios WS attained by trusting the given predictor. */
    double
    wsOfPredictor(const Predictor &predictor) const
    {
        return kernel_.wsOfPredictor(predictor);
    }

    /** Policy evaluations so far, in evaluation order. */
    const std::vector<PolicyResult> &policyResults() const
    {
        return policyResults_;
    }

    /**
     * Sample-phase measurements in the form SYNPA-style policies
     * consume: per candidate, the per-core coschedule tuples of one
     * period plus the sampled machine WS.
     */
    std::vector<CoscheduleSample> coscheduleSamples() const;

    /**
     * Register everything measured under @p group: one "candidate<i>"
     * subtree per sampled machine schedule, a "machine" subtree with
     * the stats machine's shared-L2 and per-core cache counters (plus
     * each core's best-run pipeline counters under "core<k>.perf"),
     * one "policy.<name>" subtree per evaluated policy, and the
     * best/worst/average summary. Stats bind to this experiment's
     * storage, so it must outlive any dump.
     */
    void publishStats(const stats::Group &group) const;

    /**
     * Append the machine-level scheduler decisions to @p trace:
     * "machine_sample_candidate" per profiled schedule, then
     * "machine_predictor_vote" per predictor, "machine_symbios_result"
     * per candidate and "allocation_policy" per evaluated policy.
     */
    void recordTrace(stats::EventTrace &trace) const;

  private:
    /** Engine quantum for this experiment in simulated cycles. */
    std::uint64_t timesliceCycles() const;

    /** Rebuild the calibrated mix a private task runs on. */
    JobMix freshMix() const;

    /**
     * The neutral warmup machine schedule for an allocation: each core
     * cycles its own group once, so no candidate is charged compulsory
     * misses for its placement.
     */
    MachineSchedule warmupFor(const Partition &allocation) const;

    /** One private-machine profiling task (pure in its inputs). */
    ParallelScheduleRunner::ScheduleRun
    runOne(const MachineSchedule &schedule,
           std::uint64_t timeslices) const;

    /**
     * Fan @p schedules (for @p timeslices quanta each) across the
     * worker pool. With SimConfig::snapshot set, candidates are
     * grouped by allocation (the warmup key), one warmed snapshot is
     * built per group and each candidate measures on a private fork;
     * the results are bit-identical to per-candidate warmup (runOne).
     */
    std::vector<ParallelScheduleRunner::ScheduleRun>
    runAll(const std::vector<MachineSchedule> &schedules,
           std::uint64_t timeslices) const;

    MachineExperimentSpec spec_;
    SimConfig config_;
    MachineParams machineParams_; ///< the (possibly hetero) CMP built
    MachineScheduleSpace space_;
    JobMix mix_; ///< calibrated prototype; tasks clone its soloIpc
    ParallelScheduleRunner runner_;

    /** @name Heterogeneity context for allocation policies @{ */
    std::vector<int> coreClasses_; ///< empty when homogeneous
    std::vector<std::vector<double>> soloIpcByClass_;
    /** @} */

    std::vector<MachineSchedule> schedules_;
    SosKernel kernel_; ///< owns profiles, symbios WS, phase cycles

    std::vector<PolicyResult> policyResults_;

    /** @name Best-candidate replay for live machine stats @{ */
    std::unique_ptr<Machine> statsMachine_;
    MachineEngine::MachineRunResult bestRun_;
    int bestIndex_ = -1;
    /** @} */
};

} // namespace sos

#endif // SOS_SIM_MACHINE_EXPERIMENT_HH
