#include "open_system.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "cpu/machine.hh"
#include "metrics/calibrator.hh"
#include "metrics/weighted_speedup.hh"
#include "sim/experiment_defs.hh"
#include "sim/params_io.hh"
#include "sim/timeslice_engine.hh"
#include "sos/kernel.hh"
#include "sos/model_screen.hh"
#include "sos/open_backend.hh"
#include "stats/trace.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

/**
 * Historical weighted-speedup capacity table, kept only as the
 * SOS_CAPACITY_TABLE=1 fallback: values were measured on an early
 * revision of this substrate and drift as the core model evolves.
 * The default path measures the capacity instead (see below).
 */
double
capacityGuess(int level)
{
    switch (level) {
      case 1:
        return 0.95;
      case 2:
        return 1.45;
      case 3:
        return 1.70;
      case 4:
        return 1.95;
      case 6:
        return 2.20;
      default:
        return 1.0 + 0.2 * static_cast<double>(level);
    }
}

/**
 * Measured weighted-speedup capacity of one SMT core at @p level:
 * warm co-runs of level-sized groups covering the whole open-system
 * workload population, scored against solo-IPC references from the
 * memoized Calibrator cache (the same references arrival-trace
 * generation uses). The probe is deterministic and cached
 * process-wide per (config, level), so sweeps that derive many
 * arrival rates pay for it once.
 */
double
measuredCapacity(const SimConfig &sim, int level)
{
    static std::mutex mutex;
    static std::map<std::string, double> cache;

    // configPairs deliberately omits the machine-config fields (they
    // must not perturb manifests), so the cache key carries the config
    // path explicitly: different machine files probe different cores.
    std::string key = std::to_string(level);
    key += "|machine=" + sim.machineConfigPath;
    for (const auto &pair : configPairs(sim))
        key += "|" + pair.first + "=" + pair.second;
    {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto hit = cache.find(key);
        if (hit != cache.end())
            return hit->second;
    }

    Calibrator calibrator(sim.referenceCoreFor(level),
                          sim.referenceMem(), sim.calibWarmupCycles,
                          sim.calibMeasureCycles);
    const std::vector<std::string> &workloads = openSystemWorkloads();

    Machine machine(sim.referenceCoreFor(level), sim.referenceMem());
    TimesliceEngine engine(machine.core(0), sim.timesliceCycles());
    std::vector<std::unique_ptr<Job>> jobs;
    std::vector<double> solo;
    jobs.reserve(workloads.size());
    solo.reserve(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const WorkloadProfile &profile =
            WorkloadLibrary::instance().get(workloads[w]);
        jobs.push_back(std::make_unique<Job>(
            static_cast<std::uint32_t>(w + 1), profile,
            0xcafac17eULL ^ mix64(w + 11), 1, false));
        solo.push_back(calibrator.soloIpc(workloads[w]));
    }

    // The steady-state open system mostly runs a resident coschedule
    // of `level` jobs for many consecutive timeslices, so capacity is
    // the warm co-run WS of such groups, averaged over the population
    // (a whole-population rotation would charge every slice a cold
    // restart the real system doesn't pay).
    const int n = static_cast<int>(jobs.size());
    const auto groups =
        static_cast<std::uint64_t>((n + level - 1) / level);
    // Warm and measure over the same intervals the solo references
    // used, so the co-run IPC is compared like for like.
    const std::uint64_t timeslice = sim.timesliceCycles();
    const std::uint64_t warm_slices = std::max<std::uint64_t>(
        1, sim.calibWarmupCycles / timeslice);
    const std::uint64_t measure_slices = std::max<std::uint64_t>(
        1, sim.calibMeasureCycles / timeslice);
    double ws_total = 0.0;
    for (std::uint64_t g = 0; g < groups; ++g) {
        std::vector<ThreadRef> units;
        std::vector<std::size_t> members;
        for (int k = 0; k < level; ++k) {
            const std::size_t j =
                (g * static_cast<std::uint64_t>(level) +
                 static_cast<std::uint64_t>(k)) %
                jobs.size();
            members.push_back(j);
            units.push_back(ThreadRef{jobs[j].get(), 0});
        }
        for (std::uint64_t s = 0; s < warm_slices; ++s)
            engine.runTimeslice(units);
        std::vector<std::uint64_t> before;
        for (std::size_t j : members)
            before.push_back(jobs[j]->retired());
        for (std::uint64_t s = 0; s < measure_slices; ++s)
            engine.runTimeslice(units);
        std::vector<JobProgress> progress;
        for (std::size_t m = 0; m < members.size(); ++m)
            progress.push_back(JobProgress{
                jobs[members[m]]->retired() - before[m],
                solo[members[m]]});
        ws_total += weightedSpeedup(
            progress, measure_slices * timeslice);
    }
    const double capacity =
        std::max(0.1, ws_total / static_cast<double>(groups));

    const std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, capacity);
    return capacity;
}

/** Whole-machine capacity: per-core capacity times the core count. */
double
machineCapacity(const SimConfig &sim, const OpenSystemConfig &config)
{
    const auto cores =
        static_cast<double>(std::max(1, config.numCores));
    if (std::getenv("SOS_CAPACITY_TABLE") != nullptr)
        return capacityGuess(config.level) * cores;
    return measuredCapacity(sim, config.level) * cores;
}

} // namespace

std::uint64_t
OpenSystemConfig::effectiveInterarrivalPaper(const SimConfig &sim) const
{
    if (meanInterarrivalPaper > 0)
        return meanInterarrivalPaper;
    // High but sub-saturation load: the paper sizes lambda so the
    // queue holds about 2 x capacity jobs.
    const double rate = 0.85 * machineCapacity(sim, *this);
    return static_cast<std::uint64_t>(
        static_cast<double>(meanJobPaperCycles) / rate);
}

std::vector<JobArrival>
makeArrivalTrace(const SimConfig &sim, const OpenSystemConfig &config)
{
    SOS_ASSERT(config.numJobs > 0);
    Rng rng(config.seed ^ 0x7ace7aceULL);
    Calibrator calibrator(sim.referenceCoreFor(config.level),
                          sim.referenceMem(), sim.calibWarmupCycles,
                          sim.calibMeasureCycles);

    const double interarrival = static_cast<double>(
        sim.scaled(config.effectiveInterarrivalPaper(sim)));
    const double mean_cycles =
        static_cast<double>(sim.scaled(config.meanJobPaperCycles));
    const auto &workloads = openSystemWorkloads();

    std::vector<JobArrival> trace;
    trace.reserve(static_cast<std::size_t>(config.numJobs));
    double clock = 0.0;
    for (int j = 0; j < config.numJobs; ++j) {
        clock += rng.exponential(interarrival);
        JobArrival arrival;
        arrival.arrivalCycle = static_cast<std::uint64_t>(clock);
        arrival.workload = workloads[rng.below(workloads.size())];
        // Duration in solo cycles, clamped so no job is shorter than a
        // few timeslices or absurdly long.
        double duration = rng.exponential(mean_cycles);
        duration = std::clamp(duration, mean_cycles * 0.05,
                              mean_cycles * 6.0);
        const double solo = calibrator.soloIpc(arrival.workload);
        arrival.sizeInstructions = std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(duration * solo));
        trace.push_back(std::move(arrival));
    }
    return trace;
}

std::unique_ptr<EngineBackend>
makeOpenBackend(const SimConfig &sim, const OpenSystemConfig &config)
{
    std::unique_ptr<EngineBackend> backend;
    if (config.numCores <= 1) {
        backend = std::make_unique<TimesliceBackend>(
            sim.machineFor(config.level, 1), sim.timesliceCycles());
    } else {
        backend = std::make_unique<MachineBackend>(
            sim.machineFor(config.level, config.numCores),
            sim.timesliceCycles());
    }
    // Capacity calibration (measuredCapacity above) deliberately stays
    // full detail; only the live system and its candidate forks sample.
    backend->setSampling(sim.sample);
    return backend;
}

OpenSystemResult
runOpenSystem(const SimConfig &sim, const OpenSystemConfig &config,
              const std::vector<JobArrival> &trace, OpenPolicy policy,
              EngineBackend &backend, stats::EventTrace *events)
{
    SOS_ASSERT(!trace.empty());
    Calibrator calibrator(sim.referenceCoreFor(config.level),
                          sim.referenceMem(), sim.calibWarmupCycles,
                          sim.calibMeasureCycles);

    SosKernel::OpenConfig kernel_config;
    kernel_config.sampleSchedules = config.sampleSchedules;
    kernel_config.predictor = config.predictor;
    kernel_config.resamplePolicy = config.resamplePolicy;
    kernel_config.baseIntervalCycles =
        sim.scaled(config.effectiveInterarrivalPaper(sim));
    kernel_config.seed = config.seed ^ 0x5051d67eULL;
    kernel_config.jobs = sim.jobs;
    if (sim.samplek > 0 && !sim.modelPath.empty())
        kernel_config.screen =
            makeModelScreen(sim.modelPath, sim.samplek);

    SosKernel kernel;
    return kernel.runOpen(
        backend, kernel_config, trace, policy,
        [&](std::size_t index) {
            const JobArrival &arrival = trace[index];
            const WorkloadProfile &profile =
                WorkloadLibrary::instance().get(arrival.workload);
            auto job = std::make_unique<Job>(
                static_cast<std::uint32_t>(index + 1), profile,
                config.seed ^ mix64(index + 101), 1, false);
            job->arrivalCycle = arrival.arrivalCycle;
            job->sizeInstructions = arrival.sizeInstructions;
            job->soloIpc = calibrator.soloIpc(arrival.workload);
            return job;
        },
        policy == OpenPolicy::Sos ? events : nullptr);
}

OpenSystemResult
runOpenSystem(const SimConfig &sim, const OpenSystemConfig &config,
              const std::vector<JobArrival> &trace, OpenPolicy policy,
              stats::EventTrace *events)
{
    const std::unique_ptr<EngineBackend> backend =
        makeOpenBackend(sim, config);
    return runOpenSystem(sim, config, trace, policy, *backend, events);
}

ResponseComparison
compareResponseTimes(const SimConfig &sim, const OpenSystemConfig &config)
{
    const std::vector<JobArrival> trace = makeArrivalTrace(sim, config);
    ResponseComparison comparison;
    comparison.naive =
        runOpenSystem(sim, config, trace, OpenPolicy::Naive);
    comparison.sos = runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    comparison.jobsCompared = static_cast<int>(trace.size());
    if (comparison.naive.meanResponseCycles > 0.0) {
        comparison.improvementPct =
            100.0 *
            (comparison.naive.meanResponseCycles -
             comparison.sos.meanResponseCycles) /
            comparison.naive.meanResponseCycles;
    }
    return comparison;
}

} // namespace sos
