#include "open_system.hh"

#include <algorithm>
#include <memory>
#include <set>

#include "common/combinatorics.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/predictor.hh"
#include "core/resample_policy.hh"
#include "core/schedule_profile.hh"
#include "cpu/machine.hh"
#include "metrics/calibrator.hh"
#include "sched/schedule.hh"
#include "sim/experiment_defs.hh"
#include "sim/timeslice_engine.hh"
#include "stats/trace.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

/**
 * Rough weighted-speedup capacity of the machine per SMT level, used
 * only to derive a default arrival rate that keeps the queue stable
 * around N = 2 x SMT (the paper sizes lambda by Little's law).
 */
double
capacityGuess(int level)
{
    // Roughly the naive scheduler's weighted-speedup capacity on the
    // open-system workload population, measured on this substrate.
    switch (level) {
      case 1:
        return 0.95;
      case 2:
        return 1.45;
      case 3:
        return 1.70;
      case 4:
        return 1.95;
      case 6:
        return 2.20;
      default:
        return 1.0 + 0.2 * static_cast<double>(level);
    }
}

} // namespace

std::uint64_t
OpenSystemConfig::effectiveInterarrivalPaper() const
{
    if (meanInterarrivalPaper > 0)
        return meanInterarrivalPaper;
    // High but sub-saturation load: the paper sizes lambda so the
    // queue holds about 2 x SMT jobs.
    const double rate = 0.85 * capacityGuess(level);
    return static_cast<std::uint64_t>(
        static_cast<double>(meanJobPaperCycles) / rate);
}

std::vector<JobArrival>
makeArrivalTrace(const SimConfig &sim, const OpenSystemConfig &config)
{
    SOS_ASSERT(config.numJobs > 0);
    Rng rng(config.seed ^ 0x7ace7aceULL);
    Calibrator calibrator(sim.coreFor(config.level), sim.mem,
                          sim.calibWarmupCycles, sim.calibMeasureCycles);

    const double interarrival = static_cast<double>(
        sim.scaled(config.effectiveInterarrivalPaper()));
    const double mean_cycles =
        static_cast<double>(sim.scaled(config.meanJobPaperCycles));
    const auto &workloads = openSystemWorkloads();

    std::vector<JobArrival> trace;
    trace.reserve(static_cast<std::size_t>(config.numJobs));
    double clock = 0.0;
    for (int j = 0; j < config.numJobs; ++j) {
        clock += rng.exponential(interarrival);
        JobArrival arrival;
        arrival.arrivalCycle = static_cast<std::uint64_t>(clock);
        arrival.workload = workloads[rng.below(workloads.size())];
        // Duration in solo cycles, clamped so no job is shorter than a
        // few timeslices or absurdly long.
        double duration = rng.exponential(mean_cycles);
        duration = std::clamp(duration, mean_cycles * 0.05,
                              mean_cycles * 6.0);
        const double solo = calibrator.soloIpc(arrival.workload);
        arrival.sizeInstructions = std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(duration * solo));
        trace.push_back(std::move(arrival));
    }
    return trace;
}

namespace {

/** One job currently in the system. */
struct ActiveJob
{
    std::unique_ptr<Job> job;
    int arrivalIndex = 0;
};

/** SOS scheduling state machine over the open job pool. */
class SosDriver
{
  public:
    SosDriver(int level, int sample_schedules,
              const std::string &predictor,
              std::uint64_t base_interval, std::uint64_t timeslice,
              std::uint64_t seed, stats::EventTrace *events)
        : level_(level), sampleSchedules_(sample_schedules),
          timeslice_(timeslice), resample_(base_interval),
          predictor_(makePredictor(predictor)), rng_(seed),
          events_(events)
    {
    }

    /** The job pool changed; resample immediately. */
    void
    onMembershipChange(int num_jobs)
    {
        resample_.onJobChange();
        beginPhase(num_jobs, /*timer_triggered=*/false);
    }

    /** Pick the unit indices (into the active list) for a timeslice. */
    std::vector<int>
    chooseTuple(int num_jobs)
    {
        SOS_ASSERT(num_jobs >= 1);
        if (num_jobs <= level_) {
            std::vector<int> everyone(static_cast<std::size_t>(num_jobs));
            for (int j = 0; j < num_jobs; ++j)
                everyone[static_cast<std::size_t>(j)] = j;
            return everyone;
        }
        if (sampling_) {
            return candidates_[candidate_].tupleAt(phaseOffset_ +
                                                   candidateSlice_);
        }
        return current_.tupleAt(phaseOffset_ + symbiosSlice_);
    }

    /** Account a finished timeslice; advances the state machine. */
    void
    onSliceDone(int num_jobs, const PerfCounters &counters)
    {
        if (num_jobs <= level_)
            return; // nothing to learn: only one possible schedule
        if (sampling_) {
            ++sampleCyclesSpent_;
            profileInProgress_.counters += counters;
            profileInProgress_.sliceIpc.push_back(counters.ipc());
            profileInProgress_.sliceMixImbalance.push_back(
                counters.mixImbalance());
            ++candidateSlice_;
            if (candidateSlice_ >= candidateSlices_) {
                profileInProgress_.label =
                    candidates_[candidate_].label();
                profiles_.push_back(std::move(profileInProgress_));
                profileInProgress_ = ScheduleProfile();
                candidateSlice_ = 0;
                ++candidate_;
                if (candidate_ >= candidates_.size())
                    finishSampling();
            }
        } else {
            symbiosElapsed_ += timeslice_;
            ++symbiosSlice_;
            if (symbiosElapsed_ >= resample_.symbiosDuration())
                beginPhase(num_jobs, /*timer_triggered=*/true);
        }
    }

    bool sampling() const { return sampling_; }
    std::uint64_t
    sampleCyclesSpent() const
    {
        return sampleCyclesSpent_ * timeslice_;
    }
    int samplePhases() const { return samplePhases_; }
    int jobChangeResamples() const { return jobChangeResamples_; }
    int timerResamples() const { return timerResamples_; }

  private:
    void
    beginPhase(int num_jobs, bool timer_triggered)
    {
        timerTriggered_ = timer_triggered;
        profiles_.clear();
        profileInProgress_ = ScheduleProfile();
        candidate_ = 0;
        candidateSlice_ = 0;
        symbiosSlice_ = 0;
        symbiosElapsed_ = 0;
        // Start at a random point of each schedule's period: arrivals
        // restart sampling so often that always beginning at the
        // canonical first tuple would systematically starve the jobs
        // that only appear late in the period.
        phaseOffset_ = rng_.next() & 0xffff;
        if (num_jobs <= level_) {
            sampling_ = false;
            return;
        }
        // Profiling window per candidate: a full period is fair but
        // can be as long as N timeslices for awkward N; a couple of
        // sweeps over the pool is statistically enough and lets the
        // sample phase finish between arrivals.
        candidateSlices_ = std::min<std::uint64_t>(
            ScheduleSpace(num_jobs, level_, level_).periodTimeslices(),
            2 * static_cast<std::uint64_t>(
                    (num_jobs + level_ - 1) / level_));
        // Spend at most about half the expected inter-arrival gap
        // sampling, so a symbios phase usually gets to run; always
        // compare at least two schedules.
        const std::uint64_t budget_slices =
            resample_.baseInterval() / (2 * timeslice_);
        const int count = static_cast<int>(std::clamp<std::uint64_t>(
            budget_slices / std::max<std::uint64_t>(1, candidateSlices_),
            2, static_cast<std::uint64_t>(sampleSchedules_)));
        const ScheduleSpace space(num_jobs, level_, level_);
        candidates_ = space.sample(count, rng_);
        sampling_ = true;
        ++samplePhases_;
        if (timer_triggered)
            ++timerResamples_;
        else
            ++jobChangeResamples_;
        if (events_) {
            events_->event("sample_phase_begin")
                .field("phase", samplePhases_)
                .field("trigger",
                       timer_triggered ? "timer" : "job_change")
                .field("jobs", num_jobs)
                .field("candidates",
                       static_cast<std::uint64_t>(candidates_.size()))
                .field("slices_per_candidate", candidateSlices_);
        }
    }

    void
    finishSampling()
    {
        const int best = predictor_->best(profiles_);
        current_ = candidates_[static_cast<std::size_t>(best)];
        const bool changed = current_.key() != previousKey_;
        previousKey_ = current_.key();
        if (timerTriggered_)
            resample_.onTimerSample(changed);
        sampling_ = false;
        symbiosSlice_ = 0;
        symbiosElapsed_ = 0;
        if (events_) {
            events_->event("symbios_pick")
                .field("phase", samplePhases_)
                .field("predictor", predictor_->name())
                .field("pick", best)
                .field("schedule", current_.label())
                .field("changed", changed);
        }
    }

    int level_;
    int sampleSchedules_;
    std::uint64_t timeslice_;
    ResamplePolicy resample_;
    std::unique_ptr<Predictor> predictor_;
    Rng rng_;

    bool sampling_ = false;
    bool timerTriggered_ = false;
    std::vector<Schedule> candidates_;
    std::size_t candidate_ = 0;
    std::uint64_t candidateSlice_ = 0;
    std::uint64_t candidateSlices_ = 1; ///< profiling window
    std::vector<ScheduleProfile> profiles_;
    ScheduleProfile profileInProgress_;
    std::uint64_t phaseOffset_ = 0;

    Schedule current_;
    std::string previousKey_;
    std::uint64_t symbiosSlice_ = 0;
    std::uint64_t symbiosElapsed_ = 0;
    std::uint64_t sampleCyclesSpent_ = 0; // in timeslices
    int samplePhases_ = 0;
    int jobChangeResamples_ = 0;
    int timerResamples_ = 0;
    stats::EventTrace *events_;
};

} // namespace

OpenSystemResult
runOpenSystem(const SimConfig &sim, const OpenSystemConfig &config,
              const std::vector<JobArrival> &trace, OpenPolicy policy,
              stats::EventTrace *events)
{
    SOS_ASSERT(!trace.empty());
    const std::uint64_t timeslice = sim.timesliceCycles();

    Machine machine(sim.coreFor(config.level), sim.mem);
    SmtCore &core = machine.core(0);
    TimesliceEngine engine(core, timeslice);
    Calibrator calibrator(sim.coreFor(config.level), sim.mem,
                          sim.calibWarmupCycles, sim.calibMeasureCycles);

    SosDriver sos(config.level, config.sampleSchedules,
                  config.predictor,
                  sim.scaled(config.effectiveInterarrivalPaper()),
                  timeslice, config.seed ^ 0x5051d67eULL,
                  policy == OpenPolicy::Sos ? events : nullptr);

    OpenSystemResult result;
    result.responseByArrival.assign(trace.size(), 0);

    std::vector<ActiveJob> active;
    std::size_t next_arrival = 0;
    std::uint64_t now = 0;
    std::size_t completed = 0;
    std::size_t naive_cursor = 0;
    double jobs_in_system_integral = 0.0;
    std::uint64_t slices = 0;

    // Generous runaway bound: the run should end when all jobs finish.
    const std::uint64_t max_slices =
        2000 * trace.size() + 4000000000ULL / timeslice;

    while (completed < trace.size()) {
        SOS_ASSERT(slices < max_slices,
                   "open system did not drain: unstable configuration");

        // Admit arrivals due by now.
        bool membership_changed = false;
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrivalCycle <= now) {
            const JobArrival &arrival = trace[next_arrival];
            const WorkloadProfile &profile =
                WorkloadLibrary::instance().get(arrival.workload);
            auto job = std::make_unique<Job>(
                static_cast<std::uint32_t>(next_arrival + 1), profile,
                config.seed ^ mix64(next_arrival + 101), 1, false);
            job->arrivalCycle = arrival.arrivalCycle;
            job->sizeInstructions = arrival.sizeInstructions;
            job->soloIpc = calibrator.soloIpc(arrival.workload);
            active.push_back(
                ActiveJob{std::move(job),
                          static_cast<int>(next_arrival)});
            ++next_arrival;
            membership_changed = true;
        }

        if (active.empty()) {
            // Idle until the next arrival, on the timeslice grid.
            SOS_ASSERT(next_arrival < trace.size());
            const std::uint64_t target =
                trace[next_arrival].arrivalCycle;
            now = (target / timeslice + 1) * timeslice;
            continue;
        }

        if (membership_changed && policy == OpenPolicy::Sos)
            sos.onMembershipChange(static_cast<int>(active.size()));

        // Choose the running set.
        std::vector<int> tuple;
        const int n = static_cast<int>(active.size());
        if (policy == OpenPolicy::Naive) {
            const int count = std::min(n, config.level);
            tuple.reserve(static_cast<std::size_t>(count));
            for (int k = 0; k < count; ++k)
                tuple.push_back(
                    static_cast<int>((naive_cursor + k) % active.size()));
            naive_cursor = (naive_cursor + static_cast<std::size_t>(
                                               count)) %
                           active.size();
        } else {
            tuple = sos.chooseTuple(n);
        }

        std::vector<ThreadRef> units;
        units.reserve(tuple.size());
        for (int index : tuple) {
            units.push_back(ThreadRef{
                active[static_cast<std::size_t>(index)].job.get(), 0});
        }
        const TimesliceEngine::SliceResult slice =
            engine.runTimeslice(units);
        if (policy == OpenPolicy::Sos)
            sos.onSliceDone(n, slice.counters);

        now += timeslice;
        ++slices;
        jobs_in_system_integral += static_cast<double>(active.size());

        // Retire finished jobs.
        bool any_finished = false;
        for (std::size_t i = active.size(); i-- > 0;) {
            Job &job = *active[i].job;
            if (job.retired() >= job.sizeInstructions) {
                result.responseByArrival[static_cast<std::size_t>(
                    active[i].arrivalIndex)] = now - job.arrivalCycle;
                engine.evictJob(&job);
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(i));
                ++completed;
                any_finished = true;
            }
        }
        if (any_finished) {
            naive_cursor = active.empty()
                               ? 0
                               : naive_cursor % active.size();
            if (policy == OpenPolicy::Sos && !active.empty())
                sos.onMembershipChange(static_cast<int>(active.size()));
        }
    }

    result.completed = static_cast<int>(completed);
    double total_response = 0.0;
    for (std::uint64_t r : result.responseByArrival)
        total_response += static_cast<double>(r);
    result.meanResponseCycles =
        total_response / static_cast<double>(trace.size());
    result.meanJobsInSystem =
        slices > 0 ? jobs_in_system_integral / static_cast<double>(slices)
                   : 0.0;
    result.totalCycles = now;
    result.sampleCycles = sos.sampleCyclesSpent();
    result.samplePhases = sos.samplePhases();
    result.resamplesOnJobChange = sos.jobChangeResamples();
    result.resamplesOnTimer = sos.timerResamples();
    return result;
}

ResponseComparison
compareResponseTimes(const SimConfig &sim, const OpenSystemConfig &config)
{
    const std::vector<JobArrival> trace = makeArrivalTrace(sim, config);
    ResponseComparison comparison;
    comparison.naive =
        runOpenSystem(sim, config, trace, OpenPolicy::Naive);
    comparison.sos = runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    comparison.jobsCompared = static_cast<int>(trace.size());
    if (comparison.naive.meanResponseCycles > 0.0) {
        comparison.improvementPct =
            100.0 *
            (comparison.naive.meanResponseCycles -
             comparison.sos.meanResponseCycles) /
            comparison.naive.meanResponseCycles;
    }
    return comparison;
}

} // namespace sos
