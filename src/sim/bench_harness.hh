/**
 * @file
 * Common scaffolding for the bench binaries and the sossim CLI.
 *
 * A harness owns the parsed configuration, the run's stats Registry,
 * and its decision EventTrace. Bench mains construct one from
 * (tool, argc, argv), register stats while printing their usual
 * tables, and end with `return harness.finish();` -- which writes the
 * schema-versioned JSON manifest (--out / SOS_OUT) and the JSONL
 * decision trace (--trace / SOS_TRACE) when requested, and is a no-op
 * otherwise. One call site per binary keeps every harness's
 * machine-readable output identical in shape.
 *
 * The harness also measures its own wall-clock duration. Timing is
 * host noise, so it lives in a separate "timing" stats registry that
 * never reaches the manifest (manifests must stay bit-comparable
 * across hosts, worker counts and the snapshot escape hatch); it is
 * written to --bench-sweep / SOS_BENCH_SWEEP as a small JSON report
 * with the candidate-sweep throughput.
 */

#ifndef SOS_SIM_BENCH_HARNESS_HH
#define SOS_SIM_BENCH_HARNESS_HH

#include <chrono>
#include <string>

#include "sim/config_env.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {

/** Configuration, stats and outputs of one harness run. */
class BenchHarness
{
  public:
    /** Bench-main entry: parses the standard command line. */
    BenchHarness(std::string tool, int argc, char **argv);

    /** CLI entry (sossim): configuration and outputs already parsed. */
    BenchHarness(std::string tool, SimConfig config, OutputPaths out);

    /** Effective configuration; mutable so harnesses may tweak it. */
    SimConfig &config() { return options_.config; }
    const SimConfig &config() const { return options_.config; }

    stats::Registry &registry() { return registry_; }

    /** Root registration handle. */
    stats::Group root() { return stats::Group(registry_); }

    /** Registration handle under one top-level group. */
    stats::Group
    group(const std::string &name)
    {
        return root().group(name);
    }

    /** The run's decision trace (populated only when requested). */
    stats::EventTrace &trace() { return trace_; }

    /** True when --trace / SOS_TRACE asked for decision events. */
    bool wantsTrace() const { return !options_.out.trace.empty(); }

    /** The parsed output destinations (fig9 writes --bench-cluster). */
    const OutputPaths &outputs() const { return options_.out; }

    /**
     * Write the manifest, trace and bench-sweep timing report if
     * their destinations were set. Returns the process exit status
     * (0), so mains can end with `return harness.finish();`.
     * Non-const: with sampling enabled it first registers the
     * "sampling" stats group (config, cycle split, error estimates)
     * from the process-wide accumulator.
     */
    int finish();

    /** Wall-clock seconds since the harness was constructed. */
    double elapsedSeconds() const;

    /**
     * Candidate profiling runs registered so far: the number of
     * distinct "candidate<i>" stat groups, the unit of sweep work the
     * bench-sweep report normalizes throughput by.
     */
    std::size_t candidateCount() const;

  private:
    void writeBenchSweep() const;

    /**
     * Register the "machine.topology" info group describing the
     * configured machine (per-core class, contexts, FU mix, cache
     * geometry). No-op for homogeneous runs, so default manifests
     * stay byte-identical to the pre-config goldens.
     */
    void publishMachineTopology();

    std::string tool_;
    BenchOptions options_;
    stats::Registry registry_;
    stats::EventTrace trace_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

} // namespace sos

#endif // SOS_SIM_BENCH_HARNESS_HH
