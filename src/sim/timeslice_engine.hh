/**
 * @file
 * The timeslice engine: binds scheduler decisions to the SMT core.
 *
 * Each timeslice the jobscheduler names a set of thread units; the
 * engine diffs that set against the currently resident one, so that
 * units staying resident keep their hardware context and pipeline
 * state (the "warmstart" effect of Section 8 -- under partial swap
 * only the replaced job cold-starts), swaps the rest, runs the core
 * for the quantum, and credits retired instructions to jobs.
 */

#ifndef SOS_SIM_TIMESLICE_ENGINE_HH
#define SOS_SIM_TIMESLICE_ENGINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/smt_core.hh"
#include "sched/job.hh"
#include "sched/jobmix.hh"
#include "sched/schedule.hh"
#include "cpu/sampling.hh"

namespace sos {

/** Drives one SmtCore timeslice by timeslice. */
class TimesliceEngine
{
  public:
    /** Outcome of one timeslice. */
    struct SliceResult
    {
        PerfCounters counters;
        /** Retired instructions per unit, ordered as the input set. */
        std::vector<std::uint64_t> unitRetired;
    };

    /** Outcome of running a whole schedule for several timeslices. */
    struct ScheduleRunResult
    {
        PerfCounters total;
        std::vector<double> sliceIpc;       ///< IPC of each timeslice
        std::vector<double> sliceMixImbalance; ///< per-slice |fp-int|
        std::vector<std::uint64_t> jobRetired; ///< per mix job index
        std::uint64_t cycles = 0;
    };

    TimesliceEngine(SmtCore &core, std::uint64_t timeslice_cycles);

    /**
     * Run one timeslice with the given units resident. Units already
     * on the core stay put; others are swapped in/out.
     */
    SliceResult runTimeslice(const std::vector<ThreadRef> &units);

    /** Detach everything (e.g. before re-spawning adaptive jobs). */
    void evictAll();

    /** The units currently resident, as (context slot, unit) pairs. */
    std::vector<std::pair<int, ThreadRef>> residentUnits() const;

    /**
     * Seed a fresh engine with the resident set of a snapshot fork:
     * the borrowed core already carries the (copied) pipeline state of
     * every unit, so each slot is marked occupied and the core's
     * context is rebound to the fork's own generators -- nothing is
     * squashed or re-attached.  The engine must have no occupied slots
     * and the core's active slots must match @p resident exactly.
     */
    void
    adoptResident(const std::vector<std::pair<int, ThreadRef>> &resident);

    /** Detach any resident threads of one job (before destroying it). */
    void evictJob(const Job *job);

    std::uint64_t timesliceCycles() const { return timeslice_; }
    void setTimesliceCycles(std::uint64_t cycles);

    /**
     * Configure sampled simulation for this engine's quanta (default:
     * disabled, in which case runTimeslice is exactly the full-detail
     * path -- not an approximation of it).
     */
    void setSampling(const SampleWindows &sample)
    {
        sampler_.setSample(sample);
    }

    /** See SamplingController::setRecording (off for warm-up runs). */
    void setSampleRecording(bool recording)
    {
        sampler_.setRecording(recording);
    }

    /**
     * Run @p timeslices quanta of @p schedule over @p mix, crediting
     * per-job progress. Schedule job identifiers index mix units.
     */
    ScheduleRunResult runSchedule(JobMix &mix, const Schedule &schedule,
                                  std::uint64_t timeslices);

  private:
    struct Slot
    {
        bool occupied = false;
        ThreadRef unit;
    };

    SmtCore &core_;
    std::uint64_t timeslice_;
    SamplingController sampler_;
    std::array<Slot, MaxContexts> slots_;

    /** @name Per-timeslice scratch (hoisted allocations) @{ */
    std::vector<ThreadRef> unitsScratch_;
    std::vector<int> unitSlotScratch_;
    /** @} */
};

} // namespace sos

#endif // SOS_SIM_TIMESLICE_ENGINE_HH
