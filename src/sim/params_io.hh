/**
 * @file
 * Textual configuration overrides ("key=value") for SimConfig.
 *
 * Lets tools, scripts and the sossim CLI change any tunable of the
 * simulated machine or the experiment harness without recompiling,
 * e.g. `core.intQueueSize=32` or `mem.prefetch.enabled=1`. Unknown
 * keys and malformed values are user errors and fatal().
 */

#ifndef SOS_SIM_PARAMS_IO_HH
#define SOS_SIM_PARAMS_IO_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

/** One configurable key, for help output. */
struct ParamInfo
{
    std::string key;
    std::string currentValue; ///< rendered from a default SimConfig
    std::string description;
};

/** All keys applyOverride() accepts, with defaults and descriptions. */
std::vector<ParamInfo> configurableParams();

/** Apply a single "key=value" assignment; fatal() on any error. */
void applyOverride(SimConfig &config, const std::string &assignment);

/** Apply several assignments in order. */
void applyOverrides(SimConfig &config,
                    const std::vector<std::string> &assignments);

/** Render the full configuration as "key=value" lines. */
std::string renderConfig(const SimConfig &config);

/**
 * The full configuration as ordered key/value pairs (the "config"
 * section of a run manifest; same keys as `sossim params`).
 */
std::vector<std::pair<std::string, std::string>>
configPairs(const SimConfig &config);

} // namespace sos

#endif // SOS_SIM_PARAMS_IO_HH
