/**
 * @file
 * Textual configuration overrides ("key=value") for SimConfig.
 *
 * Lets tools, scripts and the sossim CLI change any tunable of the
 * simulated machine or the experiment harness without recompiling,
 * e.g. `core.intQueueSize=32` or `mem.prefetch.enabled=1`. Unknown
 * keys and malformed values are user errors and fatal().
 */

#ifndef SOS_SIM_PARAMS_IO_HH
#define SOS_SIM_PARAMS_IO_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

/** One configurable key, for help output. */
struct ParamInfo
{
    std::string key;
    std::string currentValue; ///< rendered from a default SimConfig
    std::string description;
};

/** All keys applyOverride() accepts, with defaults and descriptions. */
std::vector<ParamInfo> configurableParams();

/** Apply a single "key=value" assignment; fatal() on any error. */
void applyOverride(SimConfig &config, const std::string &assignment);

/**
 * Apply one key/value pair, reporting failure instead of fatal()ing:
 * returns false and fills @p error (unknown key or malformed value)
 * so callers with their own context -- the machine-config parser
 * prepends file:line -- can rethrow with a better message.
 */
bool tryApplyOverride(SimConfig &config, const std::string &key,
                      const std::string &value, std::string &error);

/** Apply several assignments in order. */
void applyOverrides(SimConfig &config,
                    const std::vector<std::string> &assignments);

/** Render the full configuration as "key=value" lines. */
std::string renderConfig(const SimConfig &config);

/**
 * The full configuration as ordered key/value pairs (the "config"
 * section of a run manifest; same keys as `sossim params`). The
 * `sample` key appears only when sampling is enabled: a disabled
 * sampled mode is byte-for-byte the full-detail simulator, so golden
 * manifests recorded before the knob existed stay valid.
 */
std::vector<std::pair<std::string, std::string>>
configPairs(const SimConfig &config);

/**
 * Parse a sampled-simulation window spec: "U:W:M" (fast-forward,
 * detailed-warm and detailed-measure cycles) or "off"/"0" to disable.
 * fatal() with the expected shape on anything else, including an
 * enabled spec with no detailed window (U > 0 needs W + M > 0).
 */
SampleWindows parseSampleWindows(const std::string &value);

/** Render windows as "U:W:M", or "off" when sampling is disabled. */
std::string renderSampleWindows(const SampleWindows &sample);

} // namespace sos

#endif // SOS_SIM_PARAMS_IO_HH
