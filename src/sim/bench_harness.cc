#include "bench_harness.hh"

#include <cctype>
#include <cstdio>
#include <set>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/core_bench.hh"
#include "sim/params_io.hh"
#include "cpu/sampling.hh"
#include "stats/json.hh"

namespace sos {

namespace {

/** True for a path segment of the form candidate<digits>. */
bool
isCandidateSegment(const std::string &path, std::size_t begin,
                   std::size_t end)
{
    static const std::string prefix = "candidate";
    if (end - begin <= prefix.size() ||
        path.compare(begin, prefix.size(), prefix) != 0)
        return false;
    for (std::size_t i = begin + prefix.size(); i < end; ++i) {
        if (std::isdigit(static_cast<unsigned char>(path[i])) == 0)
            return false;
    }
    return true;
}

} // namespace

BenchHarness::BenchHarness(std::string tool, int argc, char **argv)
    : tool_(std::move(tool)), options_(parseBenchArgs(argc, argv))
{
}

BenchHarness::BenchHarness(std::string tool, SimConfig config,
                           OutputPaths out)
    : tool_(std::move(tool))
{
    options_.config = config;
    options_.out = std::move(out);
}

double
BenchHarness::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::size_t
BenchHarness::candidateCount() const
{
    std::set<std::string> groups;
    for (const stats::Stat *stat : registry_.sorted()) {
        const std::string &path = stat->path();
        std::size_t begin = 0;
        while (begin < path.size()) {
            std::size_t end = path.find('.', begin);
            if (end == std::string::npos)
                end = path.size();
            if (isCandidateSegment(path, begin, end)) {
                groups.insert(path.substr(0, end));
                break;
            }
            begin = end + 1;
        }
    }
    return groups.size();
}

void
BenchHarness::writeBenchSweep() const
{
    const double elapsed = elapsedSeconds();
    const auto candidates =
        static_cast<std::uint64_t>(candidateCount());

    // The timing registry is deliberately separate from registry_:
    // wall-clock numbers must never leak into the manifest.
    stats::Registry timing;
    const stats::Group group = stats::Group(timing).group("timing");
    group.value("elapsed_seconds", "wall-clock harness duration") =
        elapsed;
    group.value("candidates", "candidate profiling runs registered") =
        static_cast<double>(candidates);
    group.value("candidates_per_sec", "sweep throughput") =
        elapsed > 0.0 ? static_cast<double>(candidates) / elapsed : 0.0;

    std::string document;
    stats::JsonWriter json(&document);
    json.beginObject();
    json.key("schema");
    json.string("sos.bench-sweep");
    json.key("schema_version");
    json.number(1);
    json.key("tool");
    json.string(tool_);
    json.key("jobs");
    json.number(static_cast<std::int64_t>(
        resolveJobs(options_.config.jobs)));
    json.key("snapshot");
    json.boolean(options_.config.snapshot);
    json.key("sample");
    json.string(renderSampleWindows(options_.config.sample));
    json.key("stats");
    writeJsonTree(timing, json);
    json.endObject();
    SOS_ASSERT(json.complete());
    document += '\n';

    const std::string &path = options_.out.benchSweep;
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open bench-sweep output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok =
        written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to bench-sweep output '", path, "'");
}

int
BenchHarness::finish()
{
    // The sampled-mode bookkeeping group: recorded only when sampling
    // is enabled, so full-detail manifests stay byte-identical to the
    // pre-sampling goldens.
    if (options_.config.sample.enabled())
        publishSamplingStats(group("sampling"), options_.config.sample);
    if (!options_.out.manifest.empty()) {
        stats::Manifest manifest;
        manifest.tool = tool_;
        manifest.seed = options_.config.seed;
        manifest.config = configPairs(options_.config);
        stats::writeManifestFile(options_.out.manifest, manifest,
                                 registry_);
    }
    if (!options_.out.trace.empty())
        trace_.writeFile(options_.out.trace);
    if (!options_.out.benchSweep.empty())
        writeBenchSweep();
    if (!options_.out.benchCore.empty()) {
        // The core-loop microbench runs only on request: the flag is
        // the opt-in, so every harness binary gains --bench-core
        // without paying for it otherwise.
        writeCoreBenchFile(options_.out.benchCore, tool_,
                           runCoreBench());
    }
    return 0;
}

} // namespace sos
