#include "bench_harness.hh"

#include "sim/params_io.hh"

namespace sos {

BenchHarness::BenchHarness(std::string tool, int argc, char **argv)
    : tool_(std::move(tool)), options_(parseBenchArgs(argc, argv))
{
}

BenchHarness::BenchHarness(std::string tool, SimConfig config,
                           OutputPaths out)
    : tool_(std::move(tool))
{
    options_.config = config;
    options_.out = std::move(out);
}

int
BenchHarness::finish() const
{
    if (!options_.out.manifest.empty()) {
        stats::Manifest manifest;
        manifest.tool = tool_;
        manifest.seed = options_.config.seed;
        manifest.config = configPairs(options_.config);
        stats::writeManifestFile(options_.out.manifest, manifest,
                                 registry_);
    }
    if (!options_.out.trace.empty())
        trace_.writeFile(options_.out.trace);
    return 0;
}

} // namespace sos
