#include "bench_harness.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/core_bench.hh"
#include "sim/params_io.hh"
#include "cpu/sampling.hh"
#include "stats/json.hh"

namespace sos {

namespace {

/** True for a path segment of the form candidate<digits>. */
bool
isCandidateSegment(const std::string &path, std::size_t begin,
                   std::size_t end)
{
    static const std::string prefix = "candidate";
    if (end - begin <= prefix.size() ||
        path.compare(begin, prefix.size(), prefix) != 0)
        return false;
    for (std::size_t i = begin + prefix.size(); i < end; ++i) {
        if (std::isdigit(static_cast<unsigned char>(path[i])) == 0)
            return false;
    }
    return true;
}

/** Register one cache's geometry under @p group. */
void
publishCacheGeometry(const stats::Group &group,
                     const CacheParams &cache)
{
    const stats::Group g = group.group(cache.name);
    g.value("size_bytes", "total capacity") =
        static_cast<double>(cache.sizeBytes);
    g.value("line_bytes", "line (or page) size") =
        static_cast<double>(cache.lineBytes);
    g.value("assoc", "associativity") =
        static_cast<double>(cache.assoc);
}

} // namespace

void
BenchHarness::publishMachineTopology()
{
    const SimConfig &config = options_.config;
    if (config.heteroCores.empty())
        return; // homogeneous runs keep pre-config manifests byte-identical
    const int num_cores = static_cast<int>(config.heteroCores.size());
    MachineParams params;
    params.numCores = num_cores;
    params.core = config.heteroCores.front();
    params.mem = config.mem;
    params.cores = config.heteroCores;
    params.coreMem = config.heteroCoreMem;
    const std::vector<int> classes = params.coreClasses();

    const stats::Group topology = group("machine").group("topology");
    topology.info("config", "machine description file") =
        config.machineConfigPath;
    topology.value("num_cores", "cores in the configured machine") =
        static_cast<double>(num_cores);
    topology.value("num_classes",
                   "core equivalence classes (identical params)") =
        static_cast<double>(
            1 + *std::max_element(classes.begin(), classes.end()));
    publishCacheGeometry(topology, config.mem.l2);
    for (int k = 0; k < num_cores; ++k) {
        const CoreParams &core = params.coreParams(k);
        const MemParams &mem = params.memParams(k);
        const stats::Group g =
            topology.group("core" + std::to_string(k));
        g.value("class", "core equivalence class id") =
            static_cast<double>(classes[static_cast<std::size_t>(k)]);
        if (static_cast<int>(config.heteroCoreNames.size()) >
            k) {
            g.info("class_name", "config-file class name") =
                config.heteroCoreNames[static_cast<std::size_t>(k)];
        }
        g.value("contexts", "hardware thread contexts") =
            static_cast<double>(core.numContexts);
        g.value("fetch_width", "instructions fetched per cycle") =
            static_cast<double>(core.fetchWidth);
        g.value("int_units", "integer ALUs") =
            static_cast<double>(core.numIntUnits);
        g.value("fp_add_pipes", "FP add pipelines") =
            static_cast<double>(core.fpAddPipes);
        g.value("fp_mul_pipes", "FP multiply pipelines") =
            static_cast<double>(core.fpMulPipes);
        g.value("ls_ports", "load/store ports") =
            static_cast<double>(core.numLsPorts);
        publishCacheGeometry(g, mem.l1i);
        publishCacheGeometry(g, mem.l1d);
    }
}

BenchHarness::BenchHarness(std::string tool, int argc, char **argv)
    : tool_(std::move(tool)), options_(parseBenchArgs(argc, argv))
{
    trace_.setPhaseStride(options_.config.traceSample);
}

BenchHarness::BenchHarness(std::string tool, SimConfig config,
                           OutputPaths out)
    : tool_(std::move(tool))
{
    options_.config = config;
    options_.out = std::move(out);
    trace_.setPhaseStride(options_.config.traceSample);
}

double
BenchHarness::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::size_t
BenchHarness::candidateCount() const
{
    std::set<std::string> groups;
    for (const stats::Stat *stat : registry_.sorted()) {
        const std::string &path = stat->path();
        std::size_t begin = 0;
        while (begin < path.size()) {
            std::size_t end = path.find('.', begin);
            if (end == std::string::npos)
                end = path.size();
            if (isCandidateSegment(path, begin, end)) {
                groups.insert(path.substr(0, end));
                break;
            }
            begin = end + 1;
        }
    }
    return groups.size();
}

void
BenchHarness::writeBenchSweep() const
{
    const double elapsed = elapsedSeconds();
    const auto candidates =
        static_cast<std::uint64_t>(candidateCount());

    // The timing registry is deliberately separate from registry_:
    // wall-clock numbers must never leak into the manifest.
    stats::Registry timing;
    const stats::Group group = stats::Group(timing).group("timing");
    group.value("elapsed_seconds", "wall-clock harness duration") =
        elapsed;
    group.value("candidates", "candidate profiling runs registered") =
        static_cast<double>(candidates);
    group.value("candidates_per_sec", "sweep throughput") =
        elapsed > 0.0 ? static_cast<double>(candidates) / elapsed : 0.0;

    std::string document;
    stats::JsonWriter json(&document);
    json.beginObject();
    json.key("schema");
    json.string("sos.bench-sweep");
    json.key("schema_version");
    json.number(1);
    json.key("tool");
    json.string(tool_);
    json.key("jobs");
    json.number(static_cast<std::int64_t>(
        resolveJobs(options_.config.jobs)));
    json.key("snapshot");
    json.boolean(options_.config.snapshot);
    json.key("sample");
    json.string(renderSampleWindows(options_.config.sample));
    json.key("stats");
    writeJsonTree(timing, json);
    json.endObject();
    SOS_ASSERT(json.complete());
    document += '\n';

    const std::string &path = options_.out.benchSweep;
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open bench-sweep output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok =
        written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to bench-sweep output '", path, "'");
}

int
BenchHarness::finish()
{
    // The sampled-mode bookkeeping group: recorded only when sampling
    // is enabled, so full-detail manifests stay byte-identical to the
    // pre-sampling goldens.
    if (options_.config.sample.enabled())
        publishSamplingStats(group("sampling"), options_.config.sample);
    // The configured-machine description: emitted only for machines
    // loaded from a heterogeneous config file, so default manifests
    // stay byte-identical to the pre-config goldens. Pure function of
    // the parsed config -- identical across SOS_JOBS / SOS_SNAPSHOT.
    publishMachineTopology();
    if (!options_.out.manifest.empty()) {
        stats::Manifest manifest;
        manifest.tool = tool_;
        manifest.seed = options_.config.seed;
        manifest.config = configPairs(options_.config);
        stats::writeManifestFile(options_.out.manifest, manifest,
                                 registry_);
    }
    if (!options_.out.trace.empty())
        trace_.writeFile(options_.out.trace);
    if (!options_.out.benchSweep.empty())
        writeBenchSweep();
    if (!options_.out.benchCore.empty()) {
        // The core-loop microbench runs only on request: the flag is
        // the opt-in, so every harness binary gains --bench-core
        // without paying for it otherwise.
        writeCoreBenchFile(options_.out.benchCore, tool_,
                           runCoreBench());
    }
    return 0;
}

} // namespace sos
