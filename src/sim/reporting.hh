/**
 * @file
 * Fixed-width table and series printing for the benchmark harnesses.
 */

#ifndef SOS_SIM_REPORTING_HH
#define SOS_SIM_REPORTING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sos {

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

/** Format a cycle count as "123.4M" / "2.0G" style. */
std::string fmtCycles(std::uint64_t cycles);

/** Prints an aligned text table. */
class TablePrinter
{
  public:
    /** @param widths Column widths; headers sized to match. */
    TablePrinter(std::vector<std::string> headers,
                 std::vector<int> widths);

    /** Print the header row and a separator line. */
    void printHeader() const;

    /** Print one data row (cells truncated/padded to width). */
    void printRow(const std::vector<std::string> &cells) const;

    /** Print a separator line. */
    void printRule() const;

  private:
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

/** Print a section banner. */
void printBanner(const std::string &title);

} // namespace sos

#endif // SOS_SIM_REPORTING_HH
