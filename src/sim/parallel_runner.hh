/**
 * @file
 * Deterministic parallel schedule sweeps.
 *
 * Profiling a candidate schedule is a pure function of (jobmix
 * recipe, machine configuration, schedule): the runner rebuilds a
 * private SmtCore + TimesliceEngine + JobMix per task, so every
 * schedule starts from bit-identical machine state and tasks can fan
 * out across worker threads with no shared mutable state at all.
 *
 * Determinism contract (see DESIGN.md):
 *  - results are a function of the task index only, never of worker
 *    count, scheduling order, or SOS_JOBS -- 1 worker and 64 workers
 *    produce bit-identical profiles;
 *  - each task's workload generators derive their own RNG streams
 *    from the mix seed (per-schedule streams, no stream is shared or
 *    advanced across tasks);
 *  - every schedule is charged the same warmup, so candidates are
 *    compared from equal machine state (the serial seed code instead
 *    leaked cache/predictor state from one candidate into the next).
 */

#ifndef SOS_SIM_PARALLEL_RUNNER_HH
#define SOS_SIM_PARALLEL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.hh"
#include "sched/jobmix.hh"
#include "sched/schedule.hh"
#include "sim/sim_config.hh"
#include "sim/timeslice_engine.hh"

namespace sos {

/** Fans independent per-schedule simulations across a thread pool. */
class ParallelScheduleRunner
{
  public:
    /** Everything one profiling task measures. */
    struct ScheduleRun
    {
        TimesliceEngine::ScheduleRunResult run;
        double ws = 0.0; ///< weighted speedup over the run
    };

    /** Describes how each task rebuilds its private state. */
    struct SweepSpec
    {
        /**
         * Build the (calibrated) jobmix for one task. Must return an
         * identical mix for every index unless the sweep deliberately
         * varies it (e.g. per-candidate allocation plans).
         */
        std::function<JobMix(std::size_t index)> makeMix;

        /** Core/memory configuration each task's private core uses. */
        CoreParams core;
        MemParams mem;

        /** Engine quantum in simulated cycles. */
        std::uint64_t timesliceCycles = 0;

        /**
         * Schedule run before measuring, for @ref warmTimeslices
         * quanta; invalid() disables warmup.
         */
        Schedule warm;
        std::uint64_t warmTimeslices = 0;

        /**
         * Share the warmup across candidates: run it once, snapshot
         * the warmed state and fork a private copy per task (see
         * sim/snapshot.hh).  Bit-identical to per-task warmup --
         * SimConfig::snapshot / SOS_SNAPSHOT=0 forces the legacy
         * path.  Ignored when there is no warmup to share.
         */
        bool useSnapshot = true;

        /**
         * Set when makeMix returns a *different* mix per index (e.g.
         * per-candidate allocation plans): a shared warmed snapshot
         * would be wrong, so the sweep always warms per task.
         */
        bool mixVariesByIndex = false;

        /**
         * Sampled-simulation windows applied to every task's engine
         * (and the shared warm-up engine). Disabled by default; see
         * cpu/sampling.hh. Warm-up runs never record sampling stats,
         * so the manifest's sampling group stays identical across the
         * snapshot fast path and the legacy per-task warm-up.
         */
        SampleWindows sample;
    };

    /**
     * @param jobs Worker threads; 0 resolves via SOS_JOBS / hardware
     *        concurrency (see resolveJobs()).
     */
    explicit ParallelScheduleRunner(int jobs = 0);

    /** Resolved worker count. */
    int jobs() const { return jobs_; }

    /**
     * Profile schedules[i] for timeslices(schedules[i]) quanta each on
     * private state built from @p sweep. Results are indexed like
     * @p schedules.
     */
    std::vector<ScheduleRun>
    runAll(const SweepSpec &sweep, const std::vector<Schedule> &schedules,
           const std::function<std::uint64_t(const Schedule &)>
               &timeslices) const;

    /**
     * Generic deterministic fan-out: evaluate task(0..n-1) on the
     * pool and return the results in index order. task must be a pure
     * function of its index.
     */
    template <typename Result>
    std::vector<Result>
    map(std::size_t n,
        const std::function<Result(std::size_t)> &task) const
    {
        std::vector<Result> out(n);
        ThreadPool pool(workersFor(n));
        pool.run(n, [&](std::size_t i) { out[i] = task(i); });
        return out;
    }

  private:
    int workersFor(std::size_t tasks) const;

    int jobs_;
};

} // namespace sos

#endif // SOS_SIM_PARALLEL_RUNNER_HH
