/**
 * @file
 * The paper's experiment definitions (Table 1).
 *
 * An experiment is labelled Jmn(X,Y,Z): X runnable jobs, SMT level Y,
 * Z jobs swapped per timeslice; m in {s,p} for single-threaded vs
 * parallel-including mixes, n in {b,l} for the big (5 M-cycle) vs
 * little timeslice.
 */

#ifndef SOS_SIM_EXPERIMENT_DEFS_HH
#define SOS_SIM_EXPERIMENT_DEFS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sched/jobmix.hh"

namespace sos {

/** Declarative description of one throughput experiment. */
struct ExperimentSpec
{
    /** One workload entry of Table 1; threads > 1 = parallel job. */
    struct Entry
    {
        std::string workload;
        int threads = 1;
    };

    std::string label;          ///< e.g. "Jsb(6,3,3)"
    std::vector<Entry> entries; ///< Table 1 row
    int level = 2;              ///< Y: multithreading level
    int swap = 2;               ///< Z: jobs replaced per timeslice
    bool little = false;        ///< 'l': small timeslice

    /** X: number of schedulable units. */
    int numUnits() const;

    /** Materialize the jobmix (fresh jobs with deterministic seeds). */
    JobMix makeMix(std::uint64_t seed) const;
};

/**
 * All 13 throughput experiments of Figures 1 and 3 / Table 2, in the
 * paper's Table 2 order.
 */
const std::vector<ExperimentSpec> &paperExperiments();

/** Look up an experiment by its label; fatal() if unknown. */
const ExperimentSpec &experimentByLabel(const std::string &label);

/**
 * The Section 7 hierarchical-symbiosis mixes, one per SMT level
 * (2, 3, 4, 6); entries named mt_* are adaptive.
 */
struct HierarchicalSpec
{
    std::string label;
    int level = 2;
    std::vector<std::string> workloads; ///< "mt_" prefix => adaptive

    JobMix makeMix(std::uint64_t seed) const;
};

const std::vector<HierarchicalSpec> &hierarchicalExperiments();

/**
 * Workload names jobs are drawn from in the open-system experiments
 * of Section 9 (the sequential Table 1 applications).
 */
const std::vector<std::string> &openSystemWorkloads();

/** Paper Table 2 expectations for a spec (used by tests and benches). */
std::uint64_t expectedDistinctSchedules(const ExperimentSpec &spec);

/**
 * Paper-equivalent sample-phase cycles: min(10, distinct) schedules,
 * each run for one full period of timeslices (Table 2 column 3).
 */
std::uint64_t paperSamplePhaseCycles(const ExperimentSpec &spec);

} // namespace sos

#endif // SOS_SIM_EXPERIMENT_DEFS_HH
