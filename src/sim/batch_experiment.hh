/**
 * @file
 * Closed-system (fixed jobmix) SOS experiment.
 *
 * Reproduces the paper's Section 5 methodology: sample a set of
 * distinct schedules (10, or the whole space when smaller), profile
 * each for one full period of timeslices while the mix makes fair
 * progress, then run every sampled schedule for the symbios duration
 * and measure its weighted speedup. Predictors are then judged by
 * the symbios WS of the schedule they would have picked from the
 * sample-phase profiles alone (Table 3, Figures 1-3).
 *
 * Each candidate schedule is profiled on private machine state (its
 * own core, engine and jobmix rebuilt from the spec), so candidates
 * are compared from bit-identical starting conditions and the whole
 * sweep fans out across worker threads deterministically; see
 * ParallelScheduleRunner for the contract.
 */

#ifndef SOS_SIM_BATCH_EXPERIMENT_HH
#define SOS_SIM_BATCH_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "core/predictor.hh"
#include "core/schedule_profile.hh"
#include "metrics/calibrator.hh"
#include "model/features.hh"
#include "sched/jobmix.hh"
#include "sched/schedule.hh"
#include "sim/experiment_defs.hh"
#include "sim/parallel_runner.hh"
#include "sim/sim_config.hh"
#include "sos/kernel.hh"

namespace sos {

namespace stats {
class EventTrace;
class Group;
} // namespace stats

/** Runs the sample and symbios phases of one Table 1 experiment. */
class BatchExperiment
{
  public:
    BatchExperiment(const ExperimentSpec &spec, const SimConfig &config);

    /**
     * Sample phase: draw the candidate schedules and profile each for
     * one full period of timeslices.
     */
    void runSamplePhase();

    /**
     * Symbios validation: run every sampled schedule for the symbios
     * duration and record its measured weighted speedup. Requires a
     * completed sample phase.
     *
     * @param symbios_cycles Override; 0 uses the config default.
     */
    void runSymbiosValidation(std::uint64_t symbios_cycles = 0);

    const ExperimentSpec &spec() const { return spec_; }
    const SimConfig &config() const { return config_; }
    JobMix &mix() { return mix_; }

    const std::vector<Schedule> &schedules() const { return schedules_; }
    const std::vector<ScheduleProfile> &profiles() const
    {
        return kernel_.profiles();
    }

    /**
     * Model features of every sampled candidate, in candidate order:
     * composeScheduleFeatures over the calibrated mix's per-unit
     * signatures and each schedule's tuple structure. Pure static
     * information -- computable before any candidate is simulated --
     * which is what lets the samplek screen shortlist candidates and
     * the learned predictor score them. Requires a completed sample
     * phase (the schedules must have been drawn).
     */
    std::vector<model::FeatureVector> candidateFeatures() const;

    /** Simulated cycles spent in the sample phase. */
    std::uint64_t
    samplePhaseCycles() const
    {
        return kernel_.samplePhaseCycles();
    }

    /** Measured symbios-phase WS per sampled schedule. */
    const std::vector<double> &
    symbiosWs() const
    {
        return kernel_.symbiosWs();
    }

    /** @name Summary statistics over the symbios runs @{ */
    double bestWs() const { return kernel_.bestWs(); }
    double worstWs() const { return kernel_.worstWs(); }
    /** The oblivious-scheduler expectation. */
    double averageWs() const { return kernel_.averageWs(); }
    /** @} */

    /** Index of the schedule the predictor picks from the profiles. */
    int
    predictedIndex(const Predictor &predictor) const
    {
        return kernel_.predictedIndex(predictor);
    }

    /** Symbios WS attained by trusting the given predictor. */
    double
    wsOfPredictor(const Predictor &predictor) const
    {
        return kernel_.wsOfPredictor(predictor);
    }

    /**
     * Register everything this experiment measured under @p group:
     * one "candidate<i>" subtree per sampled schedule (label, sample
     * and symbios WS, balance/diversity signals, the full counter
     * snapshot) plus the sample-phase cost and, once the symbios
     * validation ran, the best/worst/average summary. Stats bind to
     * this experiment's storage, so it must outlive any dump. Call
     * after the phases you want visible have completed.
     */
    void publishStats(const stats::Group &group) const;

    /**
     * Append this experiment's scheduler decisions to @p trace: one
     * "sample_candidate" event per profiled schedule, then (after the
     * symbios validation) every predictor's "predictor_vote" and the
     * measured "symbios_result" per candidate. Events are appended
     * from the merged, index-ordered results, preserving the sweep
     * determinism contract.
     */
    void recordTrace(stats::EventTrace &trace) const;

  private:
    /** Engine quantum for this experiment in simulated cycles. */
    std::uint64_t timesliceCycles() const;

    /** Sweep recipe: private per-task mixes cloned from the spec. */
    ParallelScheduleRunner::SweepSpec makeSweep() const;

    /** Static per-unit signatures of the calibrated mix. */
    std::vector<model::ThreadSignature> unitSignatures() const;

    /**
     * The samplek screen: score every candidate with the model named
     * by config_.modelPath, detail-simulate only the top-K plus the
     * high-uncertainty ones, and fill the rest with synthetic
     * profiles.
     */
    void runScreenedSamplePhase(std::uint64_t periods);

    ExperimentSpec spec_;
    SimConfig config_;
    JobMix mix_; ///< calibrated prototype; tasks clone its soloIpc
    ParallelScheduleRunner runner_;

    std::vector<Schedule> schedules_;
    SosKernel kernel_; ///< owns profiles, symbios WS, phase cycles
};

} // namespace sos

#endif // SOS_SIM_BATCH_EXPERIMENT_HH
