#include "machine_engine.hh"

#include "common/logging.hh"

namespace sos {

MachineEngine::MachineEngine(Machine &machine,
                             std::uint64_t timeslice_cycles)
    : machine_(machine), timeslice_(timeslice_cycles)
{
    SOS_ASSERT(timeslice_cycles > 0);
    engines_.reserve(static_cast<std::size_t>(machine.numCores()));
    for (int k = 0; k < machine.numCores(); ++k)
        engines_.emplace_back(machine.core(k), timeslice_cycles);
}

void
MachineEngine::evictAll()
{
    for (TimesliceEngine &engine : engines_)
        engine.evictAll();
}

MachineEngine::MachineRunResult
MachineEngine::runSchedule(JobMix &mix, const MachineSchedule &schedule,
                           std::uint64_t timeslices)
{
    SOS_ASSERT(schedule.valid());
    SOS_ASSERT(schedule.numCores() == machine_.numCores(),
               "schedule core count must match the machine");

    MachineRunResult result;
    result.perCore.resize(static_cast<std::size_t>(machine_.numCores()));
    result.jobRetired.assign(static_cast<std::size_t>(mix.numJobs()), 0);

    for (std::uint64_t t = 0; t < timeslices; ++t) {
        PerfCounters machine_slice;
        // Core-index order within the timeslice: the documented
        // determinism contract for sharing the L2.
        for (int k = 0; k < machine_.numCores(); ++k) {
            const std::vector<int> &tuple =
                schedule.coreSchedule(k).tupleAt(t);
            std::vector<ThreadRef> &units = unitsScratch_;
            units.clear();
            units.reserve(tuple.size());
            for (int unit_index : tuple)
                units.push_back(mix.unit(unit_index));

            const TimesliceEngine::SliceResult slice =
                engines_[static_cast<std::size_t>(k)].runTimeslice(
                    units);
            result.total += slice.counters;
            result.perCore[static_cast<std::size_t>(k)] +=
                slice.counters;
            machine_slice += slice.counters;
            for (std::size_t u = 0; u < units.size(); ++u) {
                // Job ids are 1-based insertion order within the mix.
                const int job_index =
                    static_cast<int>(units[u].job->id()) - 1;
                result.jobRetired[static_cast<std::size_t>(
                    job_index)] += slice.unitRetired[u];
            }
        }
        // Machine-wide IPC: total retirement over the quantum's wall
        // cycles (the cores run concurrently, so the summed per-core
        // cycle count is not the interval length).
        machine_slice.cycles = timeslice_;
        result.sliceIpc.push_back(machine_slice.ipc());
        result.sliceMixImbalance.push_back(
            machine_slice.mixImbalance());
        result.cycles += timeslice_;
    }
    return result;
}

} // namespace sos
