/**
 * @file
 * Timeslice driver for a whole Machine.
 *
 * A MachineEngine owns one TimesliceEngine per core of a Machine and
 * advances them in lock-step: within every timeslice the cores are
 * stepped sequentially in core-index order (the determinism contract
 * Machine documents), each running its own coschedule tuple from the
 * MachineSchedule. Cores therefore interleave on the shared L2 at
 * timeslice granularity -- coarse, but deterministic and faithful to
 * the paper's OS-level view, where the scheduler only observes
 * counters at quantum boundaries anyway.
 *
 * Wall-clock time is per-core time: all cores run the same quantum
 * concurrently, so a run of T timeslices costs T * quantum machine
 * cycles, and weighted speedup divides machine-wide progress by that
 * single interval.
 */

#ifndef SOS_SIM_MACHINE_ENGINE_HH
#define SOS_SIM_MACHINE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "cpu/machine.hh"
#include "sched/jobmix.hh"
#include "sched/machine_schedule.hh"
#include "sim/timeslice_engine.hh"

namespace sos {

/** Runs machine schedules on a borrowed Machine. */
class MachineEngine
{
  public:
    /** What one machine-schedule run measured. */
    struct MachineRunResult
    {
        /** Counters summed over every core and timeslice. */
        PerfCounters total;

        /** Per-core counter totals, indexed by core. */
        std::vector<PerfCounters> perCore;

        /** Retired instructions per mix job (global job indices). */
        std::vector<std::uint64_t> jobRetired;

        /** Machine-wide IPC per timeslice (summed over cores). */
        std::vector<double> sliceIpc;

        /** Machine-wide mix imbalance per timeslice. */
        std::vector<double> sliceMixImbalance;

        /** Machine cycles elapsed (timeslices x quantum, per core). */
        std::uint64_t cycles = 0;
    };

    MachineEngine(Machine &machine, std::uint64_t timeslice_cycles);

    std::uint64_t timesliceCycles() const { return timeslice_; }

    /** Configure sampled simulation on every core's engine. */
    void
    setSampling(const SampleWindows &sample)
    {
        for (TimesliceEngine &engine : engines_)
            engine.setSampling(sample);
    }

    /** Toggle sampling-stats recording on every core's engine. */
    void
    setSampleRecording(bool recording)
    {
        for (TimesliceEngine &engine : engines_)
            engine.setSampleRecording(recording);
    }

    /**
     * Run @p schedule for @p timeslices quanta: every timeslice, core
     * k runs tuple t of its per-core schedule. The schedule's
     * allocation must index into @p mix. Jobs accumulate progress as
     * under TimesliceEngine (retired instructions and resident
     * cycles), so a warmup run followed by a measured run charges the
     * measured interval only with its own work.
     */
    MachineRunResult runSchedule(JobMix &mix,
                                 const MachineSchedule &schedule,
                                 std::uint64_t timeslices);

    /** Detach every unit from every core. */
    void evictAll();

    /** Core @p k's timeslice engine (snapshot capture/adoption). */
    TimesliceEngine &
    coreEngine(int k)
    {
        return engines_.at(static_cast<std::size_t>(k));
    }
    const TimesliceEngine &
    coreEngine(int k) const
    {
        return engines_.at(static_cast<std::size_t>(k));
    }

    int numCores() const { return static_cast<int>(engines_.size()); }

  private:
    Machine &machine_;
    std::uint64_t timeslice_;
    std::vector<TimesliceEngine> engines_;

    /** Per-timeslice scratch (hoisted allocation). */
    std::vector<ThreadRef> unitsScratch_;
};

} // namespace sos

#endif // SOS_SIM_MACHINE_ENGINE_HH
