#include "experiment_defs.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sched/schedule.hh"
#include "sim/sim_config.hh"

namespace sos {

int
ExperimentSpec::numUnits() const
{
    int n = 0;
    for (const Entry &entry : entries)
        n += entry.threads;
    return n;
}

JobMix
ExperimentSpec::makeMix(std::uint64_t seed) const
{
    JobMix mix(seed);
    for (const Entry &entry : entries) {
        if (entry.threads > 1)
            mix.addParallelJob(entry.workload, entry.threads);
        else
            mix.addJob(entry.workload);
    }
    SOS_ASSERT(mix.numUnits() == numUnits());
    return mix;
}

namespace {

using Entry = ExperimentSpec::Entry;

std::vector<Entry>
singles(const std::vector<std::string> &names)
{
    std::vector<Entry> out;
    for (const auto &name : names)
        out.push_back(Entry{name, 1});
    return out;
}

std::vector<ExperimentSpec>
buildExperiments()
{
    std::vector<ExperimentSpec> out;

    // Table 2 order. Jobs per Table 1.
    out.push_back({"Jsb(4,2,2)", singles({"FP", "MG", "GCC", "IS"}),
                   2, 2, false});
    out.push_back({"Jsb(5,2,2)",
                   singles({"FP", "MG", "WAVE", "GCC", "GO"}), 2, 2,
                   false});
    // Table 1 calls this Jsl(5,2,1) but Table 2's 250 M-cycle sample
    // phase implies the big timeslice; we follow Table 2.
    out.push_back({"Jsb(5,2,1)",
                   singles({"FP", "MG", "WAVE", "GCC", "GO"}), 2, 1,
                   false});

    const std::vector<Entry> parallel_mix = {
        {"FP", 1},     {"MG", 1},  {"WAVE", 1}, {"SWIM", 1},
        {"SU2COR", 1}, {"TURB3D", 1}, {"GCC", 1}, {"GCC", 1},
        {"ARRAY", 2},
    };
    out.push_back({"Jpb(10,2,2)", parallel_mix, 2, 2, false});

    std::vector<Entry> parallel_mix2 = parallel_mix;
    parallel_mix2.back() = {"ARRAY2", 2};
    out.push_back({"J2pb(10,2,2)", parallel_mix2, 2, 2, false});

    const auto six = singles({"FP", "MG", "WAVE", "GCC", "GCC", "GO"});
    out.push_back({"Jsb(6,3,3)", six, 3, 3, false});
    out.push_back({"Jsb(6,3,1)", six, 3, 1, false});
    out.push_back({"Jsl(6,3,1)", six, 3, 1, true});

    const auto eight = singles(
        {"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"});
    out.push_back({"Jsb(8,4,4)", eight, 4, 4, false});
    out.push_back({"Jsb(8,4,1)", eight, 4, 1, false});
    out.push_back({"Jsl(8,4,1)", eight, 4, 1, true});

    const auto twelve =
        singles({"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC",
                 "GCC", "GO", "IS", "CG", "EP"});
    out.push_back({"Jsb(12,4,4)", twelve, 4, 4, false});
    out.push_back({"Jsb(12,6,6)", twelve, 6, 6, false});

    return out;
}

} // namespace

const std::vector<ExperimentSpec> &
paperExperiments()
{
    static const std::vector<ExperimentSpec> experiments =
        buildExperiments();
    return experiments;
}

const ExperimentSpec &
experimentByLabel(const std::string &label)
{
    for (const ExperimentSpec &spec : paperExperiments()) {
        if (spec.label == label)
            return spec;
    }
    fatal("unknown experiment '", label, "'");
}

JobMix
HierarchicalSpec::makeMix(std::uint64_t seed) const
{
    JobMix mix(seed);
    for (const std::string &name : workloads) {
        if (name.rfind("mt_", 0) == 0)
            mix.addAdaptiveJob(name);
        else
            mix.addJob(name);
    }
    return mix;
}

const std::vector<HierarchicalSpec> &
hierarchicalExperiments()
{
    static const std::vector<HierarchicalSpec> experiments = {
        {"SMT level 2", 2, {"CG", "mt_ARRAY", "EP"}},
        {"SMT level 3", 3, {"FP", "MG", "WAVE", "mt_EP", "CG"}},
        {"SMT level 4", 4, {"FP", "MG", "WAVE", "mt_ARRAY", "EP", "CG"}},
        {"SMT level 6", 6,
         {"FP", "MG", "WAVE", "GO", "IS", "GCC", "mt_ARRAY", "EP", "CG",
          "FT"}},
    };
    return experiments;
}

const std::vector<std::string> &
openSystemWorkloads()
{
    static const std::vector<std::string> workloads = {
        "FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D",
        "GCC", "GO", "IS", "CG", "EP", "FT",
    };
    return workloads;
}

std::uint64_t
expectedDistinctSchedules(const ExperimentSpec &spec)
{
    return ScheduleSpace(spec.numUnits(), spec.level, spec.swap)
        .distinctCount();
}

std::uint64_t
paperSamplePhaseCycles(const ExperimentSpec &spec)
{
    const ScheduleSpace space(spec.numUnits(), spec.level, spec.swap);
    const std::uint64_t sampled =
        std::min<std::uint64_t>(10, space.distinctCount());
    const std::uint64_t timeslice = spec.little
                                        ? SimConfig::paperLittleTimeslice
                                        : SimConfig::paperTimeslice;
    return sampled * space.periodTimeslices() * timeslice;
}

} // namespace sos
