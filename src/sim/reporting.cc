#include "reporting.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sos {

std::string
fmt(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
fmtCycles(std::uint64_t cycles)
{
    char buffer[64];
    if (cycles >= 1000000000ULL) {
        std::snprintf(buffer, sizeof(buffer), "%.1fG",
                      static_cast<double>(cycles) / 1e9);
    } else if (cycles >= 1000000ULL) {
        std::snprintf(buffer, sizeof(buffer), "%.1fM",
                      static_cast<double>(cycles) / 1e6);
    } else if (cycles >= 1000ULL) {
        std::snprintf(buffer, sizeof(buffer), "%.1fK",
                      static_cast<double>(cycles) / 1e3);
    } else {
        // std::to_string sidesteps the %llu-vs-PRIu64 portability
        // trap for std::uint64_t (-Wformat on LP64 clang).
        return std::to_string(cycles);
    }
    return buffer;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths))
{
    SOS_ASSERT(headers_.size() == widths_.size(),
               "one width per header");
}

void
TablePrinter::printHeader() const
{
    printRow(headers_);
    printRule();
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    SOS_ASSERT(cells.size() == widths_.size(), "cell count mismatch");
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        std::string cell = cells[c];
        const auto width = static_cast<std::size_t>(widths_[c]);
        if (cell.size() > width)
            cell = cell.substr(0, width);
        if (c == 0) {
            // Left-align the first column, right-align the rest.
            cell.append(width - cell.size(), ' ');
        } else {
            cell.insert(0, width - cell.size(), ' ');
        }
        line += cell;
        if (c + 1 < cells.size())
            line += "  ";
    }
    std::printf("%s\n", line.c_str());
}

void
TablePrinter::printRule() const
{
    std::size_t total = 0;
    for (int w : widths_)
        total += static_cast<std::size_t>(w);
    total += 2 * (widths_.size() - 1);
    std::printf("%s\n", std::string(total, '-').c_str());
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace sos
