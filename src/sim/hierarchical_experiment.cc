#include "hierarchical_experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/calibrator.hh"
#include "sim/sweep_backend.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {

HierarchicalExperiment::HierarchicalExperiment(
    const HierarchicalSpec &spec, const SimConfig &config,
    int max_candidates)
    : spec_(spec), config_(config), runner_(config.jobs)
{
    SOS_ASSERT(max_candidates >= 1);

    JobMix prototype = spec.makeMix(config.seed ^ 0x41e7a11cULL);
    std::vector<bool> adaptive;
    adaptive.reserve(static_cast<std::size_t>(prototype.numJobs()));
    for (int j = 0; j < prototype.numJobs(); ++j)
        adaptive.push_back(prototype.job(j).adaptive());

    const std::vector<AllocationPlan> plans = enumerateAllocationPlans(
        adaptive, spec.level, /*max_threads_per_job=*/spec.level);

    const int per_plan = std::max(
        1, max_candidates / static_cast<int>(plans.size()));
    Rng rng(config.seed ^ 0x1e8a12c1ULL);

    for (const AllocationPlan &plan : plans) {
        const ScheduleSpace space(plan.totalUnits(), spec.level,
                                  spec.level);
        for (Schedule &schedule : space.sample(per_plan, rng)) {
            HierarchicalCandidate candidate;
            candidate.plan = plan;
            candidate.schedule = std::move(schedule);
            candidates_.push_back(std::move(candidate));
        }
    }
    SOS_ASSERT(!candidates_.empty());

    // Measure every solo-IPC reference the plans can ask for now, on
    // this thread; the sweep tasks then only read the table.
    Calibrator calibrator(config_.coreFor(spec_.level), config_.mem,
                          config_.calibWarmupCycles,
                          config_.calibMeasureCycles);
    calibrator.setSampling(config_.sample);
    for (const AllocationPlan &plan : plans) {
        for (int j = 0; j < prototype.numJobs(); ++j) {
            const int threads =
                plan.threadsPerJob[static_cast<std::size_t>(j)];
            const std::string &name = prototype.job(j).name();
            soloIpc_[{name, threads}] = calibrator.soloIpc(name, threads);
        }
    }
}

JobMix
HierarchicalExperiment::mixForPlan(const AllocationPlan &plan) const
{
    JobMix mix = spec_.makeMix(config_.seed ^ 0x41e7a11cULL);
    for (int j = 0; j < mix.numJobs(); ++j) {
        Job &job = mix.job(j);
        const int threads =
            plan.threadsPerJob[static_cast<std::size_t>(j)];
        if (job.adaptive() && job.numThreads() != threads)
            job.setThreadCount(threads);
        SOS_ASSERT(job.adaptive() || threads == 1);
        const auto ref = soloIpc_.find({job.name(), threads});
        SOS_ASSERT(ref != soloIpc_.end(),
                   "plan asks for an uncalibrated thread count");
        job.soloIpc = ref->second;
    }
    return mix;
}

ParallelScheduleRunner::SweepSpec
HierarchicalExperiment::makeSweep() const
{
    ParallelScheduleRunner::SweepSpec sweep;
    sweep.makeMix = [this](std::size_t index) {
        return mixForPlan(candidates_[index].plan);
    };
    sweep.core = config_.coreFor(spec_.level);
    sweep.mem = config_.mem;
    sweep.timesliceCycles = config_.timesliceCycles();
    // No shared warmup: every candidate starts equally cold, and the
    // sample phase already runs several periods per candidate. The
    // mix also differs per candidate (allocation plans change thread
    // counts), so a shared warmed snapshot would be wrong anyway.
    sweep.mixVariesByIndex = true;
    sweep.sample = config_.sample;
    return sweep;
}

void
HierarchicalExperiment::run(std::uint64_t symbios_cycles)
{
    const std::uint64_t symbios =
        symbios_cycles > 0 ? symbios_cycles
                           : config_.symbiosCycles() / 4;

    std::vector<Schedule> schedules;
    schedules.reserve(candidates_.size());
    for (const HierarchicalCandidate &candidate : candidates_)
        schedules.push_back(candidate.schedule);

    const ScheduleSweepBackend backend(
        runner_, makeSweep(), schedules, [this](std::size_t i) {
            return candidates_[i].plan.label() + " " +
                   candidates_[i].schedule.label();
        });

    // Sample phase: a few periods per candidate (see samplePeriods).
    const auto periods =
        static_cast<std::uint64_t>(std::max(1, config_.samplePeriods));
    kernel_.runSamplePhase(backend, [&](std::size_t i) {
        return schedules[i].periodTimeslices() * periods;
    });

    // Symbios validation: what each candidate would have delivered.
    const std::uint64_t timeslice = config_.timesliceCycles();
    kernel_.runSymbiosValidation(backend, [&](std::size_t i) {
        return std::max<std::uint64_t>(
            schedules[i].periodTimeslices(), symbios / timeslice);
    });

    // Copy the kernel's results back onto the candidate structs the
    // public API (and Figure 4 reporting) exposes.
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        candidates_[i].profile = kernel_.profiles()[i];
        candidates_[i].symbiosWs = kernel_.symbiosWs()[i];
    }
}

double
HierarchicalExperiment::bestWs() const
{
    double best = candidates_.front().symbiosWs;
    for (const auto &candidate : candidates_)
        best = std::max(best, candidate.symbiosWs);
    return best;
}

double
HierarchicalExperiment::worstWs() const
{
    double worst = candidates_.front().symbiosWs;
    for (const auto &candidate : candidates_)
        worst = std::min(worst, candidate.symbiosWs);
    return worst;
}

double
HierarchicalExperiment::averageWs() const
{
    double total = 0.0;
    for (const auto &candidate : candidates_)
        total += candidate.symbiosWs;
    return total / static_cast<double>(candidates_.size());
}

int
HierarchicalExperiment::scoreBestIndex() const
{
    std::vector<ScheduleProfile> profiles;
    profiles.reserve(candidates_.size());
    for (const auto &candidate : candidates_)
        profiles.push_back(candidate.profile);
    return makeScorePredictor()->best(profiles);
}

double
HierarchicalExperiment::scoreWs() const
{
    return candidates_[static_cast<std::size_t>(scoreBestIndex())]
        .symbiosWs;
}

double
HierarchicalExperiment::improvementOverAveragePct() const
{
    return 100.0 * (scoreWs() - averageWs()) / averageWs();
}

double
HierarchicalExperiment::improvementOverWorstPct() const
{
    return 100.0 * (scoreWs() - worstWs()) / worstWs();
}

void
HierarchicalExperiment::publishStats(const stats::Group &group) const
{
    group.info("label", "hierarchical mix label") = spec_.label;

    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        const HierarchicalCandidate &candidate = candidates_[i];
        const stats::Group cand =
            group.group("candidate" + std::to_string(i));
        cand.info("allocation", "threads granted per job") =
            candidate.plan.label();
        cand.info("schedule", "candidate schedule label") =
            candidate.schedule.label();
        cand.value("sample_ws", "WS observed during the sample phase") =
            candidate.profile.sampleWs;
        cand.value("ws", "symbios-phase weighted speedup") =
            candidate.symbiosWs;
        candidate.profile.counters.registerStats(
            cand.group("counters"));
    }

    const stats::Group summary = group.group("summary");
    summary.value("best_ws", "best symbios WS in the sample") =
        bestWs();
    summary.value("worst_ws", "worst symbios WS in the sample") =
        worstWs();
    summary.value("avg_ws",
                  "oblivious-scheduler expectation over the sample") =
        averageWs();
    summary.scalar("score_pick", "candidate index Score selects") =
        static_cast<std::uint64_t>(scoreBestIndex());
    summary.value("score_ws", "symbios WS of the Score pick") =
        scoreWs();
    summary.value("improvement_over_avg_pct",
                  "Figure 4 bar: Score vs average") =
        improvementOverAveragePct();
    summary.value("improvement_over_worst_pct",
                  "Figure 4 bar: Score vs worst") =
        improvementOverWorstPct();
}

void
HierarchicalExperiment::recordTrace(stats::EventTrace &trace) const
{
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        const HierarchicalCandidate &candidate = candidates_[i];
        trace.event("sample_candidate")
            .field("experiment", spec_.label)
            .field("index", static_cast<std::uint64_t>(i))
            .field("allocation", candidate.plan.label())
            .field("schedule", candidate.schedule.label())
            .field("sample_ws", candidate.profile.sampleWs);
    }
    const int pick = scoreBestIndex();
    trace.event("symbios_pick")
        .field("experiment", spec_.label)
        .field("predictor", "Score")
        .field("pick", pick)
        .field("allocation",
               candidates_[static_cast<std::size_t>(pick)].plan.label())
        .field("schedule", candidates_[static_cast<std::size_t>(pick)]
                               .schedule.label())
        .field("ws", scoreWs());
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        trace.event("symbios_result")
            .field("experiment", spec_.label)
            .field("index", static_cast<std::uint64_t>(i))
            .field("ws", candidates_[i].symbiosWs);
    }
}

} // namespace sos
