#include "hierarchical_experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/calibrator.hh"
#include "metrics/weighted_speedup.hh"

namespace sos {

HierarchicalExperiment::HierarchicalExperiment(
    const HierarchicalSpec &spec, const SimConfig &config,
    int max_candidates)
    : spec_(spec), config_(config),
      mix_(spec.makeMix(config.seed ^ 0x41e7a11cULL)),
      core_(config.coreFor(spec.level), config.mem),
      engine_(core_, config.timesliceCycles()),
      calibrator_(config.coreFor(spec.level), config.mem,
                  config.calibWarmupCycles, config.calibMeasureCycles)
{
    SOS_ASSERT(max_candidates >= 1);

    std::vector<bool> adaptive;
    adaptive.reserve(static_cast<std::size_t>(mix_.numJobs()));
    for (int j = 0; j < mix_.numJobs(); ++j)
        adaptive.push_back(mix_.job(j).adaptive());

    const std::vector<AllocationPlan> plans = enumerateAllocationPlans(
        adaptive, spec.level, /*max_threads_per_job=*/spec.level);

    const int per_plan = std::max(
        1, max_candidates / static_cast<int>(plans.size()));
    Rng rng(config.seed ^ 0x1e8a12c1ULL);

    for (const AllocationPlan &plan : plans) {
        const ScheduleSpace space(plan.totalUnits(), spec.level,
                                  spec.level);
        for (Schedule &schedule : space.sample(per_plan, rng)) {
            HierarchicalCandidate candidate;
            candidate.plan = plan;
            candidate.schedule = std::move(schedule);
            candidates_.push_back(std::move(candidate));
        }
    }
    SOS_ASSERT(!candidates_.empty());
}

void
HierarchicalExperiment::applyPlan(const AllocationPlan &plan)
{
    // Re-spawning invalidates generator pointers the core may hold.
    engine_.evictAll();
    for (int j = 0; j < mix_.numJobs(); ++j) {
        Job &job = mix_.job(j);
        const int threads =
            plan.threadsPerJob[static_cast<std::size_t>(j)];
        if (job.adaptive() && job.numThreads() != threads)
            job.setThreadCount(threads);
        SOS_ASSERT(job.adaptive() || threads == 1);
        calibrator_.calibrate(job);
    }
}

void
HierarchicalExperiment::run(std::uint64_t symbios_cycles)
{
    const std::uint64_t symbios =
        symbios_cycles > 0 ? symbios_cycles
                           : config_.symbiosCycles() / 4;

    // Sample phase: a few periods per candidate (see samplePeriods).
    const auto periods =
        static_cast<std::uint64_t>(std::max(1, config_.samplePeriods));
    for (HierarchicalCandidate &candidate : candidates_) {
        applyPlan(candidate.plan);
        const TimesliceEngine::ScheduleRunResult run = engine_.runSchedule(
            mix_, candidate.schedule,
            candidate.schedule.periodTimeslices() * periods);
        candidate.profile.label =
            candidate.plan.label() + " " + candidate.schedule.label();
        candidate.profile.counters = run.total;
        candidate.profile.sliceIpc = run.sliceIpc;
        candidate.profile.sliceMixImbalance = run.sliceMixImbalance;
        candidate.profile.sampleWs =
            weightedSpeedup(mix_, run.jobRetired, run.cycles);
    }

    // Symbios validation: what each candidate would have delivered.
    for (HierarchicalCandidate &candidate : candidates_) {
        applyPlan(candidate.plan);
        const std::uint64_t timeslices = std::max<std::uint64_t>(
            candidate.schedule.periodTimeslices(),
            symbios / engine_.timesliceCycles());
        const TimesliceEngine::ScheduleRunResult run =
            engine_.runSchedule(mix_, candidate.schedule, timeslices);
        candidate.symbiosWs =
            weightedSpeedup(mix_, run.jobRetired, run.cycles);
    }
}

double
HierarchicalExperiment::bestWs() const
{
    double best = candidates_.front().symbiosWs;
    for (const auto &candidate : candidates_)
        best = std::max(best, candidate.symbiosWs);
    return best;
}

double
HierarchicalExperiment::worstWs() const
{
    double worst = candidates_.front().symbiosWs;
    for (const auto &candidate : candidates_)
        worst = std::min(worst, candidate.symbiosWs);
    return worst;
}

double
HierarchicalExperiment::averageWs() const
{
    double total = 0.0;
    for (const auto &candidate : candidates_)
        total += candidate.symbiosWs;
    return total / static_cast<double>(candidates_.size());
}

int
HierarchicalExperiment::scoreBestIndex() const
{
    std::vector<ScheduleProfile> profiles;
    profiles.reserve(candidates_.size());
    for (const auto &candidate : candidates_)
        profiles.push_back(candidate.profile);
    return makeScorePredictor()->best(profiles);
}

double
HierarchicalExperiment::scoreWs() const
{
    return candidates_[static_cast<std::size_t>(scoreBestIndex())]
        .symbiosWs;
}

double
HierarchicalExperiment::improvementOverAveragePct() const
{
    return 100.0 * (scoreWs() - averageWs()) / averageWs();
}

double
HierarchicalExperiment::improvementOverWorstPct() const
{
    return 100.0 * (scoreWs() - worstWs()) / worstWs();
}

} // namespace sos
