#include "batch_experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/weighted_speedup.hh"

namespace sos {

namespace {

std::uint64_t
hashLabel(const std::string &label)
{
    // FNV-1a: stable per-label seed derivation.
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : label)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

} // namespace

BatchExperiment::BatchExperiment(const ExperimentSpec &spec,
                                 const SimConfig &config)
    : spec_(spec), config_(config),
      mix_(spec.makeMix(config.seed ^ hashLabel(spec.label))),
      core_(config.coreFor(spec.level), config.mem),
      engine_(core_, spec.little ? config.littleTimesliceCycles()
                                 : config.timesliceCycles())
{
    Calibrator calibrator(config_.coreFor(spec_.level), config_.mem,
                          config_.calibWarmupCycles,
                          config_.calibMeasureCycles);
    calibrator.calibrate(mix_);
}

void
BatchExperiment::runSamplePhase()
{
    SOS_ASSERT(profiles_.empty(), "sample phase already ran");
    Rng rng(config_.seed ^ hashLabel(spec_.label) ^ 0x5a3217e1ULL);

    const ScheduleSpace space(spec_.numUnits(), spec_.level, spec_.swap);
    schedules_ = space.sample(config_.sampleSchedules, rng);

    // Neutral warmup: cycle every job through the machine once before
    // any schedule is profiled, so the first candidate is not charged
    // for compulsory cache and predictor misses. (The paper's 5 M-cycle
    // timeslices amortize cold start; our scaled ones need this.)
    {
        std::vector<int> order(static_cast<std::size_t>(spec_.numUnits()));
        for (std::size_t u = 0; u < order.size(); ++u)
            order[u] = static_cast<int>(u);
        const Schedule warm =
            spec_.numUnits() == spec_.level
                ? Schedule::fromPartition({order})
                : Schedule::fromRotation(order, spec_.level, spec_.swap);
        engine_.runSchedule(mix_, warm, warm.periodTimeslices());
    }

    const auto periods =
        static_cast<std::uint64_t>(std::max(1, config_.samplePeriods));
    for (const Schedule &schedule : schedules_) {
        const TimesliceEngine::ScheduleRunResult run =
            engine_.runSchedule(mix_, schedule,
                                schedule.periodTimeslices() * periods);
        ScheduleProfile profile;
        profile.label = schedule.label();
        profile.counters = run.total;
        profile.sliceIpc = run.sliceIpc;
        profile.sliceMixImbalance = run.sliceMixImbalance;
        profile.sampleWs =
            weightedSpeedup(mix_, run.jobRetired, run.cycles);
        profiles_.push_back(std::move(profile));
        sampleCycles_ += run.cycles;
    }
}

void
BatchExperiment::runSymbiosValidation(std::uint64_t symbios_cycles)
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    SOS_ASSERT(symbiosWs_.empty(), "symbios validation already ran");
    const std::uint64_t cycles =
        symbios_cycles > 0 ? symbios_cycles : config_.symbiosCycles();
    const std::uint64_t timeslices =
        std::max<std::uint64_t>(1, cycles / engine_.timesliceCycles());

    for (const Schedule &schedule : schedules_) {
        const TimesliceEngine::ScheduleRunResult run =
            engine_.runSchedule(mix_, schedule, timeslices);
        symbiosWs_.push_back(
            weightedSpeedup(mix_, run.jobRetired, run.cycles));
    }
}

double
BatchExperiment::bestWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::max_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
BatchExperiment::worstWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    return *std::min_element(symbiosWs_.begin(), symbiosWs_.end());
}

double
BatchExperiment::averageWs() const
{
    SOS_ASSERT(!symbiosWs_.empty());
    double total = 0.0;
    for (double ws : symbiosWs_)
        total += ws;
    return total / static_cast<double>(symbiosWs_.size());
}

int
BatchExperiment::predictedIndex(const Predictor &predictor) const
{
    SOS_ASSERT(!profiles_.empty(), "run the sample phase first");
    return predictor.best(profiles_);
}

double
BatchExperiment::wsOfPredictor(const Predictor &predictor) const
{
    SOS_ASSERT(!symbiosWs_.empty(), "run the symbios validation first");
    return symbiosWs_[static_cast<std::size_t>(
        predictedIndex(predictor))];
}

} // namespace sos
