#include "batch_experiment.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/weighted_speedup.hh"
#include "model/model.hh"
#include "sim/sweep_backend.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {

namespace {

std::uint64_t
hashLabel(const std::string &label)
{
    // FNV-1a: stable per-label seed derivation.
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : label)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

/**
 * The neutral warmup schedule: cycle every job through the machine
 * once so no candidate is charged for compulsory cache and predictor
 * misses. (The paper's 5 M-cycle timeslices amortize cold start; our
 * scaled ones need this.)
 */
Schedule
warmupSchedule(const ExperimentSpec &spec)
{
    std::vector<int> order(static_cast<std::size_t>(spec.numUnits()));
    for (std::size_t u = 0; u < order.size(); ++u)
        order[u] = static_cast<int>(u);
    return spec.numUnits() == spec.level
               ? Schedule::fromPartition({order})
               : Schedule::fromRotation(order, spec.level, spec.swap);
}

} // namespace

BatchExperiment::BatchExperiment(const ExperimentSpec &spec,
                                 const SimConfig &config)
    : spec_(spec), config_(config),
      mix_(spec.makeMix(config.seed ^ hashLabel(spec.label))),
      runner_(config.jobs)
{
    Calibrator calibrator(config_.coreFor(spec_.level), config_.mem,
                          config_.calibWarmupCycles,
                          config_.calibMeasureCycles);
    calibrator.setSampling(config_.sample);
    calibrator.calibrate(mix_);
}

std::uint64_t
BatchExperiment::timesliceCycles() const
{
    return spec_.little ? config_.littleTimesliceCycles()
                        : config_.timesliceCycles();
}

ParallelScheduleRunner::SweepSpec
BatchExperiment::makeSweep() const
{
    ParallelScheduleRunner::SweepSpec sweep;
    // Every task rebuilds the same mix from the same seed, so all
    // candidates see identical workload streams; the prototype's
    // calibration is copied instead of re-measured.
    sweep.makeMix = [this](std::size_t) {
        JobMix mix =
            spec_.makeMix(config_.seed ^ hashLabel(spec_.label));
        for (int j = 0; j < mix.numJobs(); ++j)
            mix.job(j).soloIpc = mix_.job(j).soloIpc;
        return mix;
    };
    sweep.core = config_.coreFor(spec_.level);
    sweep.mem = config_.mem;
    sweep.timesliceCycles = timesliceCycles();
    sweep.warm = warmupSchedule(spec_);
    sweep.warmTimeslices = sweep.warm.periodTimeslices();
    sweep.useSnapshot = config_.snapshot;
    sweep.sample = config_.sample;
    return sweep;
}

std::vector<model::ThreadSignature>
BatchExperiment::unitSignatures() const
{
    std::vector<model::ThreadSignature> signatures;
    for (int u = 0; u < mix_.numUnits(); ++u) {
        const Job *job = mix_.unit(u).job;
        SOS_ASSERT(job != nullptr);
        signatures.push_back(model::makeThreadSignature(
            static_cast<int>(job->id()), job->profile(), job->soloIpc));
    }
    return signatures;
}

std::vector<model::FeatureVector>
BatchExperiment::candidateFeatures() const
{
    SOS_ASSERT(!schedules_.empty(), "run the sample phase first");
    const std::vector<model::ThreadSignature> signatures =
        unitSignatures();
    std::vector<model::FeatureVector> features;
    features.reserve(schedules_.size());
    for (const Schedule &schedule : schedules_)
        features.push_back(model::composeScheduleFeatures(
            signatures, schedule.tuples()));
    return features;
}

void
BatchExperiment::runScreenedSamplePhase(std::uint64_t periods)
{
    std::shared_ptr<const model::WsModel> ws_model;
    try {
        ws_model = model::loadModel(config_.modelPath);
    } catch (const model::ModelError &error) {
        fatal("samplek screen: ", error.what());
    }

    const std::vector<model::FeatureVector> features =
        candidateFeatures();
    std::vector<double> predicted(features.size());
    std::vector<double> uncertainty(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
        predicted[i] = ws_model->predict(features[i]);
        uncertainty[i] = ws_model->uncertainty(features[i]);
    }

    // Shortlist = top-K predictions plus every candidate whose
    // uncertainty exceeds the model's stored (training-p90)
    // threshold; ties in prediction break toward the lower index so
    // the screen is deterministic.
    std::vector<std::size_t> order(features.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return predicted[a] > predicted[b];
                     });
    const std::size_t keep_top = std::min(
        features.size(), static_cast<std::size_t>(config_.samplek));
    std::vector<bool> keep(features.size(), false);
    for (std::size_t i = 0; i < keep_top; ++i)
        keep[order[i]] = true;
    for (std::size_t i = 0; i < features.size(); ++i) {
        if (uncertainty[i] > ws_model->uncertaintyThreshold())
            keep[i] = true;
    }

    std::vector<std::size_t> shortlist;
    std::vector<Schedule> shortlisted;
    for (std::size_t i = 0; i < keep.size(); ++i) {
        if (!keep[i])
            continue;
        shortlist.push_back(i);
        shortlisted.push_back(schedules_[i]);
    }

    // Synthetic profiles for the screened-out candidates: the model's
    // prediction stands in for the sample-phase WS, and no counters
    // exist (predictors never score these; see
    // SosKernel::predictedIndex).
    std::vector<ScheduleProfile> synthetic(schedules_.size());
    for (std::size_t i = 0; i < schedules_.size(); ++i) {
        synthetic[i].label = schedules_[i].label();
        synthetic[i].sampleWs = predicted[i];
        synthetic[i].detailed = false;
    }

    const ScheduleSweepBackend backend(runner_, makeSweep(),
                                       shortlisted);
    kernel_.runSamplePhaseScreened(
        backend,
        [&](std::size_t i) {
            return shortlisted[i].periodTimeslices() * periods;
        },
        shortlist, std::move(synthetic));
}

void
BatchExperiment::runSamplePhase()
{
    Rng rng(config_.seed ^ hashLabel(spec_.label) ^ 0x5a3217e1ULL);

    const ScheduleSpace space(spec_.numUnits(), spec_.level, spec_.swap);
    schedules_ = space.sample(config_.sampleSchedules, rng);

    const auto periods =
        static_cast<std::uint64_t>(std::max(1, config_.samplePeriods));

    if (config_.samplek > 0 && !config_.modelPath.empty()) {
        runScreenedSamplePhase(periods);
        return;
    }

    const ScheduleSweepBackend backend(runner_, makeSweep(),
                                       schedules_);
    kernel_.runSamplePhase(backend, [&](std::size_t i) {
        return schedules_[i].periodTimeslices() * periods;
    });
}

void
BatchExperiment::runSymbiosValidation(std::uint64_t symbios_cycles)
{
    const std::uint64_t cycles =
        symbios_cycles > 0 ? symbios_cycles : config_.symbiosCycles();
    const std::uint64_t timeslices =
        std::max<std::uint64_t>(1, cycles / timesliceCycles());

    const ScheduleSweepBackend backend(runner_, makeSweep(),
                                       schedules_);
    kernel_.runSymbiosValidation(
        backend, [timeslices](std::size_t) { return timeslices; });
}

void
BatchExperiment::publishStats(const stats::Group &group) const
{
    group.info("label", "experiment label") = spec_.label;
    group.scalar("sample_phase_cycles",
                 "simulated cycles spent profiling candidates")
        .bind(&kernel_.samplePhaseCyclesStorage());

    const std::vector<ScheduleProfile> &profiles = kernel_.profiles();
    const std::vector<double> &symbios = kernel_.symbiosWs();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const ScheduleProfile &profile = profiles[i];
        const stats::Group cand =
            group.group("candidate" + std::to_string(i));
        cand.info("schedule", "candidate schedule label") =
            profile.label;
        cand.value("sample_ws", "WS observed during the sample phase") =
            profile.sampleWs;
        cand.value("balance", "stddev of per-timeslice IPC") =
            profile.balance();
        cand.value("diversity", "mean per-timeslice mix imbalance") =
            profile.diversity();
        if (i < symbios.size())
            cand.value("ws", "symbios-phase weighted speedup") =
                symbios[i];
        profile.counters.registerStats(cand.group("counters"));
    }

    if (!symbios.empty()) {
        const stats::Group summary = group.group("summary");
        summary.value("best_ws", "best symbios WS in the sample") =
            bestWs();
        summary.value("worst_ws", "worst symbios WS in the sample") =
            worstWs();
        summary.value("avg_ws",
                      "oblivious-scheduler expectation over the sample") =
            averageWs();
    }
}

void
BatchExperiment::recordTrace(stats::EventTrace &trace) const
{
    const std::vector<ScheduleProfile> &profiles = kernel_.profiles();
    const std::vector<double> &symbios = kernel_.symbiosWs();
    // Candidate features ride along so sostrain can join them against
    // the symbios_result labels without re-deriving the mix.
    const std::vector<model::FeatureVector> features =
        candidateFeatures();
    const std::vector<std::string> &names = model::featureNames();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        auto event =
            trace.event("sample_candidate")
                .field("experiment", spec_.label)
                .field("index", static_cast<std::uint64_t>(i))
                .field("schedule", profiles[i].label)
                .field("sample_ws", profiles[i].sampleWs)
                .field("ipc", profiles[i].counters.ipc())
                .field("features_version",
                       static_cast<std::uint64_t>(
                           model::kFeatureSchemaVersion));
        for (std::size_t f = 0; f < names.size(); ++f)
            event.field("feat_" + names[f], features[i][f]);
    }
    if (symbios.empty())
        return;

    for (const std::unique_ptr<Predictor> &predictor :
         makeAllPredictors()) {
        const int pick = predictedIndex(*predictor);
        trace.event("predictor_vote")
            .field("experiment", spec_.label)
            .field("predictor", predictor->name())
            .field("pick", pick)
            .field("schedule",
                   profiles[static_cast<std::size_t>(pick)].label)
            .field("ws", symbios[static_cast<std::size_t>(pick)]);
    }
    for (std::size_t i = 0; i < symbios.size(); ++i) {
        trace.event("symbios_result")
            .field("experiment", spec_.label)
            .field("index", static_cast<std::uint64_t>(i))
            .field("schedule", profiles[i].label)
            .field("ws", symbios[i]);
    }
}

} // namespace sos
