/**
 * @file
 * Adapter from a ParallelScheduleRunner schedule sweep to the SOS
 * kernel's ClosedSweepBackend: the batch and hierarchical drivers
 * expose their candidate schedules (and per-task sweep recipe) to the
 * kernel through this, keeping experiment code down to configuration
 * translation and stats publication.
 */

#ifndef SOS_SIM_SWEEP_BACKEND_HH
#define SOS_SIM_SWEEP_BACKEND_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sched/schedule.hh"
#include "sim/parallel_runner.hh"
#include "sos/closed_backend.hh"

namespace sos {

/** A candidate-schedule sweep presented to the kernel. */
class ScheduleSweepBackend : public ClosedSweepBackend
{
  public:
    /** Optional label override (e.g. "plan schedule" pairs). */
    using LabelFn = std::function<std::string(std::size_t)>;

    ScheduleSweepBackend(const ParallelScheduleRunner &runner,
                         ParallelScheduleRunner::SweepSpec sweep,
                         const std::vector<Schedule> &schedules,
                         LabelFn label = {})
        : runner_(runner), sweep_(std::move(sweep)),
          schedules_(schedules), label_(std::move(label))
    {
    }

    std::size_t
    numCandidates() const override
    {
        return schedules_.size();
    }

    std::string
    candidateLabel(std::size_t index) const override
    {
        return label_ ? label_(index) : schedules_[index].label();
    }

    std::vector<ParallelScheduleRunner::ScheduleRun>
    runCandidates(
        const std::function<std::uint64_t(std::size_t)> &timeslices)
        const override
    {
        return runner_.runAll(
            sweep_, schedules_, [&](const Schedule &schedule) {
                // runAll passes references into schedules_, so the
                // candidate index is recoverable by address.
                return timeslices(static_cast<std::size_t>(
                    &schedule - schedules_.data()));
            });
    }

  private:
    const ParallelScheduleRunner &runner_;
    ParallelScheduleRunner::SweepSpec sweep_;
    const std::vector<Schedule> &schedules_;
    LabelFn label_;
};

} // namespace sos

#endif // SOS_SIM_SWEEP_BACKEND_HH
