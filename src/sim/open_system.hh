/**
 * @file
 * Open-system response-time experiment (Section 9, Figures 5-6).
 *
 * Jobs enter with exponentially distributed interarrival times and
 * exponentially distributed lengths, drawn from the Table 1
 * applications. The same pregenerated arrival trace is fed to two
 * schedulers:
 *
 *  - Naive: coschedules jobs in tuples equal to the SMT level in the
 *    order they arrived (the paper's random control group);
 *  - SOS: samples schedules of the current mix, runs the Score-
 *    predicted best in the symbios phase, and resamples on job
 *    arrival, job departure, or timer expiry with exponential backoff.
 *
 * Both swap the whole running set each timeslice, as in the paper.
 * Response time is completion minus arrival; SOS's sampling overhead
 * is inside the measurement, exactly as the paper reports it.
 */

#ifndef SOS_SIM_OPEN_SYSTEM_HH
#define SOS_SIM_OPEN_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

namespace stats {
class EventTrace;
} // namespace stats

/** One pregenerated job arrival. */
struct JobArrival
{
    std::string workload;
    std::uint64_t arrivalCycle = 0;     ///< simulated cycles
    std::uint64_t sizeInstructions = 0; ///< retire this many to finish
};

/** Parameters of one open-system run. */
struct OpenSystemConfig
{
    int level = 3;

    /**
     * Mean job length in paper cycles of solo execution. The paper
     * uses 2 G; the default here is shorter so benchmark harnesses
     * finish in minutes -- response-time *ratios* are preserved
     * (documented in DESIGN.md).
     */
    std::uint64_t meanJobPaperCycles = 150000000;

    /**
     * Mean interarrival time in paper cycles; 0 derives a value that
     * keeps the system stable with roughly N = 2 x SMT jobs present.
     */
    std::uint64_t meanInterarrivalPaper = 0;

    /** Arrivals to generate (the run ends when all complete). */
    int numJobs = 32;

    /** Maximum schedules profiled per sample phase. */
    int sampleSchedules = 10;

    /**
     * Predictor the symbios phase trusts. The paper does not name the
     * one used for its response-time experiments; IPC is the most
     * robust single predictor on this substrate (see Figure 3) and is
     * the default here. Any name makePredictor() accepts works.
     */
    std::string predictor = "IPC";

    std::uint64_t seed = 0x0b5e55edULL;

    /** Effective interarrival mean (derives the default if unset). */
    std::uint64_t effectiveInterarrivalPaper() const;
};

/** Outcome of one open-system run under one policy. */
struct OpenSystemResult
{
    int completed = 0;
    double meanResponseCycles = 0.0;
    double meanJobsInSystem = 0.0; ///< Little's-law sanity signal
    std::uint64_t totalCycles = 0;
    std::uint64_t sampleCycles = 0; ///< cycles spent in sample phases
    int samplePhases = 0;
    /** Resamples forced by a job arriving or departing. */
    int resamplesOnJobChange = 0;
    /** Resamples triggered by the backoff timer expiring. */
    int resamplesOnTimer = 0;
    /** Response time per arrival index (matches the trace order). */
    std::vector<std::uint64_t> responseByArrival;
};

/** Scheduling policy of an open-system run. */
enum class OpenPolicy
{
    Naive,
    Sos,
};

/** Generate the deterministic arrival trace both policies replay. */
std::vector<JobArrival> makeArrivalTrace(const SimConfig &sim,
                                         const OpenSystemConfig &config);

/**
 * Run one policy over a trace.
 *
 * When @p events is non-null, the SOS driver's decisions -- each
 * "sample_phase_begin" (with its trigger: job_change or timer) and
 * each "symbios_pick" -- are appended to it. The run is serial, so
 * inline emission is deterministic.
 */
OpenSystemResult runOpenSystem(const SimConfig &sim,
                               const OpenSystemConfig &config,
                               const std::vector<JobArrival> &trace,
                               OpenPolicy policy,
                               stats::EventTrace *events = nullptr);

/** Side-by-side comparison used by Figures 5 and 6. */
struct ResponseComparison
{
    OpenSystemResult naive;
    OpenSystemResult sos;
    int jobsCompared = 0;
    /** Mean response-time improvement of SOS over naive, percent. */
    double improvementPct = 0.0;
};

/** Run both policies over the same trace and compare. */
ResponseComparison compareResponseTimes(const SimConfig &sim,
                                        const OpenSystemConfig &config);

} // namespace sos

#endif // SOS_SIM_OPEN_SYSTEM_HH
