/**
 * @file
 * Open-system response-time experiment (Section 9, Figures 5-6, 8).
 *
 * Jobs enter with exponentially distributed interarrival times and
 * exponentially distributed lengths, drawn from the Table 1
 * applications. The same pregenerated arrival trace is fed to two
 * schedulers:
 *
 *  - Naive: coschedules jobs in tuples equal to the machine capacity
 *    in the order they arrived (the paper's random control group);
 *  - SOS: samples coschedules of the current mix, runs the predicted
 *    best in the symbios phase, and resamples on job arrival, job
 *    departure, or timer expiry with exponential backoff.
 *
 * Both swap the whole running set each timeslice, as in the paper.
 * Response time is completion minus arrival; SOS's sampling overhead
 * is inside the measurement, exactly as the paper reports it.
 *
 * This file is a thin adapter: trace generation and configuration
 * translation. The scheduling loop itself is SosKernel::runOpen() --
 * the event-driven sample/symbios state machine shared with the
 * closed-system drivers -- running on an EngineBackend substrate
 * (one SMT core for Figures 5-6, a CMP of SMT cores for Figure 8).
 */

#ifndef SOS_SIM_OPEN_SYSTEM_HH
#define SOS_SIM_OPEN_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

class EngineBackend;

namespace stats {
class EventTrace;
} // namespace stats

/** One pregenerated job arrival. */
struct JobArrival
{
    std::string workload;
    std::uint64_t arrivalCycle = 0;     ///< simulated cycles
    std::uint64_t sizeInstructions = 0; ///< retire this many to finish
};

/** Parameters of one open-system run. */
struct OpenSystemConfig
{
    int level = 3;

    /**
     * SMT cores in the machine. 1 (the paper's substrate) schedules
     * one core behind a TimesliceEngine; more build a CMP backend
     * where every coschedule assigns a job group per core (Figure 8).
     */
    int numCores = 1;

    /**
     * Mean job length in paper cycles of solo execution. The paper
     * uses 2 G; the default here is shorter so benchmark harnesses
     * finish in minutes -- response-time *ratios* are preserved
     * (documented in DESIGN.md).
     */
    std::uint64_t meanJobPaperCycles = 150000000;

    /**
     * Mean interarrival time in paper cycles; 0 derives a value that
     * keeps the system stable with roughly N = 2 x capacity jobs.
     */
    std::uint64_t meanInterarrivalPaper = 0;

    /** Arrivals to generate (the run ends when all complete). */
    int numJobs = 32;

    /** Maximum schedules profiled per sample phase. */
    int sampleSchedules = 10;

    /**
     * Predictor the symbios phase trusts. The paper does not name the
     * one used for its response-time experiments; IPC is the most
     * robust single predictor on this substrate (see Figure 3) and is
     * the default here. Any name makePredictor() accepts works.
     */
    std::string predictor = "IPC";

    /**
     * Resample-timer policy ("backoff" is the paper's exponential
     * backoff; any name makeResamplePolicy() accepts works).
     */
    std::string resamplePolicy = "backoff";

    std::uint64_t seed = 0x0b5e55edULL;

    /**
     * Effective interarrival mean (derives the default if unset).
     *
     * The derived value keeps the queue stable against the machine's
     * measured weighted-speedup capacity: a short naive-rotation
     * co-run of the open-system workload population on @p sim's
     * substrate, scored against the memoized Calibrator solo-IPC
     * references and cached process-wide. Set SOS_CAPACITY_TABLE=1 to
     * use the historical hard-coded per-level table instead.
     */
    std::uint64_t effectiveInterarrivalPaper(const SimConfig &sim) const;
};

/** Outcome of one open-system run under one policy. */
struct OpenSystemResult
{
    int completed = 0;
    double meanResponseCycles = 0.0;
    double meanJobsInSystem = 0.0; ///< Little's-law sanity signal
    std::uint64_t totalCycles = 0;
    std::uint64_t sampleCycles = 0; ///< cycles spent in sample phases
    int samplePhases = 0;
    /** Resamples forced by a job arriving or departing. */
    int resamplesOnJobChange = 0;
    /** Resamples triggered by the backoff timer expiring. */
    int resamplesOnTimer = 0;
    /** Response time per arrival index (matches the trace order). */
    std::vector<std::uint64_t> responseByArrival;
};

/** Scheduling policy of an open-system run. */
enum class OpenPolicy
{
    Naive,
    Sos,
};

/** Generate the deterministic arrival trace both policies replay. */
std::vector<JobArrival> makeArrivalTrace(const SimConfig &sim,
                                         const OpenSystemConfig &config);

/**
 * Build the engine backend an open-system run schedules onto: a
 * single-SMT-core TimesliceBackend for numCores == 1, a CMP
 * MachineBackend otherwise. Exposed so harnesses can keep the backend
 * alive and publish its machine's stat groups after the run.
 */
std::unique_ptr<EngineBackend>
makeOpenBackend(const SimConfig &sim, const OpenSystemConfig &config);

/**
 * Run one policy over a trace on an externally owned backend.
 *
 * When @p events is non-null, the kernel's SOS decisions -- each
 * "sample_phase_begin" (with its trigger: job_change or timer) and
 * each "symbios_pick" -- are appended to it. Decisions are emitted
 * from the kernel's deterministic event loop, so traces are
 * byte-identical across runs and worker counts.
 */
OpenSystemResult runOpenSystem(const SimConfig &sim,
                               const OpenSystemConfig &config,
                               const std::vector<JobArrival> &trace,
                               OpenPolicy policy, EngineBackend &backend,
                               stats::EventTrace *events = nullptr);

/** Convenience overload: builds (and discards) the backend itself. */
OpenSystemResult runOpenSystem(const SimConfig &sim,
                               const OpenSystemConfig &config,
                               const std::vector<JobArrival> &trace,
                               OpenPolicy policy,
                               stats::EventTrace *events = nullptr);

/** Side-by-side comparison used by Figures 5, 6 and 8. */
struct ResponseComparison
{
    OpenSystemResult naive;
    OpenSystemResult sos;
    int jobsCompared = 0;
    /** Mean response-time improvement of SOS over naive, percent. */
    double improvementPct = 0.0;
};

/** Run both policies over the same trace and compare. */
ResponseComparison compareResponseTimes(const SimConfig &sim,
                                        const OpenSystemConfig &config);

} // namespace sos

#endif // SOS_SIM_OPEN_SYSTEM_HH
