/**
 * @file
 * Warm-state snapshots for schedule sweeps.
 *
 * Every candidate of a sample-phase sweep used to re-simulate the
 * same cache/predictor warmup before its measured interval.  A
 * MachineSnapshot captures the complete post-warmup state once --
 * machine (cores, caches, predictor, cycle counts), jobmix
 * (generators mid-stream, sync domains, progress accounting) and the
 * engine's resident table -- and every candidate then runs on a
 * private Fork of it.
 *
 * Determinism contract (DESIGN.md §5c): forking is semantics
 * preserving.  All simulator state is value-copied, and the only
 * cross-object references (core -> memory view -> shared L2, context
 * -> generator/sync domain) are rebound to the fork's own copies, so
 * a fork's measured interval is bit-identical to re-running the
 * warmup from scratch and then measuring.  Forking from a const
 * snapshot is read-only and therefore safe from concurrent sweep
 * workers.
 */

#ifndef SOS_SIM_SNAPSHOT_HH
#define SOS_SIM_SNAPSHOT_HH

#include <vector>

#include "cpu/machine.hh"
#include "sched/jobmix.hh"
#include "sim/machine_engine.hh"
#include "sim/timeslice_engine.hh"

namespace sos {

/** Copyable warm state of (machine, jobmix, resident threads). */
class MachineSnapshot
{
  public:
    /**
     * Capture a warmed single-core run: @p engine must drive
     * machine.core(0) and @p mix must own every resident unit.
     */
    MachineSnapshot(const Machine &machine, const JobMix &mix,
                    const TimesliceEngine &engine);

    /** Capture a warmed whole-machine run. */
    MachineSnapshot(const Machine &machine, const JobMix &mix,
                    const MachineEngine &engine);

    /** A private, runnable copy of the captured state. */
    class Fork
    {
      public:
        /** Deep-copy the snapshot (thread-safe: reads only). */
        explicit Fork(const MachineSnapshot &snapshot);

        Machine &machine() { return machine_; }
        JobMix &mix() { return mix_; }

        /**
         * Seed a fresh TimesliceEngine over machine().core(core) with
         * the captured resident set, rebinding the core's contexts to
         * this fork's jobmix.  Call once per engine before running.
         */
        void adopt(TimesliceEngine &engine, int core = 0);

        /** Seed every core engine of a fresh MachineEngine. */
        void adopt(MachineEngine &engine);

      private:
        const MachineSnapshot *snapshot_;
        Machine machine_;
        JobMix mix_;
    };

  private:
    /** One resident hardware context at capture time. */
    struct ResidentUnit
    {
        int core = 0;
        int slot = 0;
        int jobIndex = 0; ///< position in the mix (id() - 1)
        int thread = 0;
    };

    void capture(const JobMix &mix, const TimesliceEngine &engine,
                 int core);

    Machine machine_;
    JobMix mix_;
    std::vector<ResidentUnit> resident_;
};

} // namespace sos

#endif // SOS_SIM_SNAPSHOT_HH
