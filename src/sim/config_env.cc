#include "config_env.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "config/machine_config.hh"
#include "sim/params_io.hh"

namespace sos {

SimConfig
benchConfigFromEnv()
{
    SimConfig config = makeBenchConfig();
    if (const char *scale = std::getenv("SOS_CYCLE_SCALE")) {
        const long value = std::strtol(scale, nullptr, 10);
        if (value <= 0)
            fatal("SOS_CYCLE_SCALE must be a positive integer");
        config.cycleScale = static_cast<std::uint64_t>(value);
    }
    if (const char *seed = std::getenv("SOS_SEED")) {
        config.seed = std::strtoull(seed, nullptr, 10);
    }
    // Warm-state sharing for sweeps; semantics-preserving, so this is
    // an escape hatch rather than a tuning knob.
    if (const char *snapshot = std::getenv("SOS_SNAPSHOT"))
        applyOverride(config, std::string("snapshot=") + snapshot);
    // Sampled-simulation windows (U:W:M or 'off'); validated up front
    // so a typo dies here rather than deep inside a sweep.
    if (const char *sample = std::getenv("SOS_SAMPLE"))
        applyOverride(config, std::string("sample=") + sample);
    // Decision-trace sampling stride; observability only, never in
    // configPairs (long cluster runs keep traces bounded with it).
    if (const char *stride = std::getenv("SOS_TRACE_SAMPLE"))
        applyOverride(config, std::string("traceSample=") + stride);
    // Trained WS model for the learned predictor/dispatcher and the
    // samplek screen (a file written by sostrain).
    if (const char *model = std::getenv("SOS_MODEL"))
        config.modelPath = model;
    // Machine description file: core count, per-core params, shared
    // L2 geometry. Parsed (and validated) before any --set flag so
    // explicit CLI overrides still win over the file's defaults.
    if (const char *machine = std::getenv("SOS_MACHINE_CONFIG"))
        applyMachineConfig(config, machine);
    // Sweep worker threads; resolveJobs() validates the value and
    // falls back to the hardware concurrency when unset.
    config.jobs = resolveJobs(0);
    return config;
}

OutputPaths
outputPathsFromEnv()
{
    OutputPaths out;
    if (const char *path = std::getenv("SOS_OUT"))
        out.manifest = path;
    if (const char *path = std::getenv("SOS_TRACE"))
        out.trace = path;
    if (const char *path = std::getenv("SOS_BENCH_SWEEP"))
        out.benchSweep = path;
    if (const char *path = std::getenv("SOS_BENCH_CORE"))
        out.benchCore = path;
    if (const char *path = std::getenv("SOS_BENCH_CLUSTER"))
        out.benchCluster = path;
    return out;
}

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions options;
    options.config = benchConfigFromEnv();
    options.out = outputPathsFromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " needs an argument");
            return argv[++i];
        };
        if (arg == "--set")
            applyOverride(options.config, valueOf("--set"));
        else if (arg == "--jobs")
            applyOverride(options.config, "jobs=" + valueOf("--jobs"));
        else if (arg == "--machine-config")
            applyMachineConfig(options.config,
                               valueOf("--machine-config"));
        else if (arg == "--model")
            options.config.modelPath = valueOf("--model");
        else if (arg == "--out")
            options.out.manifest = valueOf("--out");
        else if (arg == "--trace")
            options.out.trace = valueOf("--trace");
        else if (arg == "--bench-sweep")
            options.out.benchSweep = valueOf("--bench-sweep");
        else if (arg == "--bench-core")
            options.out.benchCore = valueOf("--bench-core");
        else if (arg == "--bench-cluster")
            options.out.benchCluster = valueOf("--bench-cluster");
        else
            fatal("unknown argument '", arg,
                  "' (bench harnesses accept --set key=value, "
                  "--jobs N, --machine-config FILE, --model FILE, "
                  "--out FILE, --trace FILE, --bench-sweep FILE, "
                  "--bench-core FILE, --bench-cluster FILE)");
    }
    return options;
}

} // namespace sos
