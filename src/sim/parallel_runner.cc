#include "parallel_runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "metrics/weighted_speedup.hh"
#include "sim/snapshot.hh"

namespace sos {

ParallelScheduleRunner::ParallelScheduleRunner(int jobs)
    : jobs_(resolveJobs(jobs))
{
}

int
ParallelScheduleRunner::workersFor(std::size_t tasks) const
{
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), std::max<std::size_t>(tasks, 1)));
}

std::vector<ParallelScheduleRunner::ScheduleRun>
ParallelScheduleRunner::runAll(
    const SweepSpec &sweep, const std::vector<Schedule> &schedules,
    const std::function<std::uint64_t(const Schedule &)> &timeslices)
    const
{
    SOS_ASSERT(sweep.makeMix, "sweep needs a mix factory");
    SOS_ASSERT(sweep.timesliceCycles > 0);

    const bool has_warmup =
        sweep.warm.valid() && sweep.warmTimeslices > 0;
    if (sweep.useSnapshot && has_warmup && !sweep.mixVariesByIndex) {
        // Shared-warmup fast path: simulate the warmup once, then run
        // every candidate's measured interval on a private fork of the
        // warmed state.  Bit-identical to the legacy path below: each
        // task there warms an identical mix on an identical machine,
        // so its post-warmup state IS the snapshot (DESIGN.md §5c).
        JobMix warm_mix = sweep.makeMix(0);
        Machine warm_machine(sweep.core, sweep.mem);
        TimesliceEngine warm_engine(warm_machine.core(0),
                                    sweep.timesliceCycles);
        warm_engine.setSampling(sweep.sample);
        warm_engine.setSampleRecording(false);
        warm_engine.runSchedule(warm_mix, sweep.warm,
                                sweep.warmTimeslices);
        const MachineSnapshot snapshot(warm_machine, warm_mix,
                                       warm_engine);

        return map<ScheduleRun>(schedules.size(), [&](std::size_t i) {
            const Schedule &schedule = schedules[i];
            MachineSnapshot::Fork fork(snapshot);
            TimesliceEngine engine(fork.machine().core(0),
                                   sweep.timesliceCycles);
            engine.setSampling(sweep.sample);
            fork.adopt(engine);

            ScheduleRun result;
            result.run = engine.runSchedule(fork.mix(), schedule,
                                            timeslices(schedule));
            result.ws = weightedSpeedup(fork.mix(),
                                        result.run.jobRetired,
                                        result.run.cycles);
            return result;
        });
    }

    return map<ScheduleRun>(schedules.size(), [&](std::size_t i) {
        const Schedule &schedule = schedules[i];
        JobMix mix = sweep.makeMix(i);
        // A private 1-core machine per task keeps sweep results a pure
        // function of the task index (DESIGN.md determinism contract).
        Machine machine(sweep.core, sweep.mem);
        TimesliceEngine engine(machine.core(0), sweep.timesliceCycles);
        engine.setSampling(sweep.sample);
        if (has_warmup) {
            // Warm-up is charged to every task identically; keep it
            // out of the sampling stats so the totals match the
            // shared-warmup fast path above.
            engine.setSampleRecording(false);
            engine.runSchedule(mix, sweep.warm, sweep.warmTimeslices);
            engine.setSampleRecording(true);
        }

        ScheduleRun result;
        result.run =
            engine.runSchedule(mix, schedule, timeslices(schedule));
        result.ws = weightedSpeedup(mix, result.run.jobRetired,
                                    result.run.cycles);
        return result;
    });
}

} // namespace sos
