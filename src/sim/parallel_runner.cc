#include "parallel_runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "metrics/weighted_speedup.hh"

namespace sos {

ParallelScheduleRunner::ParallelScheduleRunner(int jobs)
    : jobs_(resolveJobs(jobs))
{
}

int
ParallelScheduleRunner::workersFor(std::size_t tasks) const
{
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), std::max<std::size_t>(tasks, 1)));
}

std::vector<ParallelScheduleRunner::ScheduleRun>
ParallelScheduleRunner::runAll(
    const SweepSpec &sweep, const std::vector<Schedule> &schedules,
    const std::function<std::uint64_t(const Schedule &)> &timeslices)
    const
{
    SOS_ASSERT(sweep.makeMix, "sweep needs a mix factory");
    SOS_ASSERT(sweep.timesliceCycles > 0);

    return map<ScheduleRun>(schedules.size(), [&](std::size_t i) {
        const Schedule &schedule = schedules[i];
        JobMix mix = sweep.makeMix(i);
        // A private 1-core machine per task keeps sweep results a pure
        // function of the task index (DESIGN.md determinism contract).
        Machine machine(sweep.core, sweep.mem);
        TimesliceEngine engine(machine.core(0), sweep.timesliceCycles);
        if (sweep.warm.valid() && sweep.warmTimeslices > 0)
            engine.runSchedule(mix, sweep.warm, sweep.warmTimeslices);

        ScheduleRun result;
        result.run =
            engine.runSchedule(mix, schedule, timeslices(schedule));
        result.ws = weightedSpeedup(mix, result.run.jobRetired,
                                    result.run.cycles);
        return result;
    });
}

} // namespace sos
