/**
 * @file
 * Host-throughput microbenchmark of the SmtCore cycle loop.
 *
 * Runs a fixed, deterministic workload -- one SMT core per level in
 * {1, 2, 4, 6} contexts, each bound to library workloads with fixed
 * seeds and driven for a fixed cycle budget -- and reports how fast
 * the *host* chews through simulated cycles and retired instructions.
 *
 * The simulated side (cycles, retired, IPC) is bit-reproducible: it
 * must not change unless the architectural model changes, which makes
 * the report double as a cheap identity probe. The host side
 * (cycles/sec, kilo-instructions/sec) is what the CI perf trajectory
 * tracks: it is pure wall-clock and never enters a run manifest.
 *
 * Requested with --bench-core FILE / SOS_BENCH_CORE; written by
 * BenchHarness::finish() as a "sos.bench-core" schema v1 JSON report.
 */

#ifndef SOS_SIM_CORE_BENCH_HH
#define SOS_SIM_CORE_BENCH_HH

#include <array>
#include <cstdint>
#include <string>

namespace sos {

/** Measured throughput of the core loop at one SMT level. */
struct CoreBenchLevel
{
    int contexts = 0;             ///< hardware contexts exercised
    std::uint64_t cycles = 0;     ///< simulated cycles driven
    std::uint64_t retired = 0;    ///< instructions retired (deterministic)
    double ipc = 0.0;             ///< simulated IPC (deterministic)
    double elapsedSeconds = 0.0;  ///< host wall-clock for the run
    double cyclesPerSec = 0.0;    ///< host throughput, simulated cycles/s
    double retiredPerSec = 0.0;   ///< host throughput, retired insts/s
};

/** Result of one full microbench sweep over the SMT levels. */
struct CoreBenchResult
{
    static constexpr int numLevels = 4;
    std::array<CoreBenchLevel, numLevels> levels{};
    double elapsedSeconds = 0.0; ///< total harness wall-clock
};

/**
 * Drive the fixed core-loop workload at every SMT level.
 *
 * @param cycles_per_level Simulated cycles per level (default sized
 *        so the whole sweep takes about a second on a laptop core).
 */
CoreBenchResult runCoreBench(std::uint64_t cycles_per_level = 300000);

/**
 * Write @p result to @p path as a "sos.bench-core" schema v1 JSON
 * document. @p tool names the producing binary. fatal()s on I/O
 * errors, mirroring the bench-sweep writer.
 */
void writeCoreBenchFile(const std::string &path, const std::string &tool,
                        const CoreBenchResult &result);

} // namespace sos

#endif // SOS_SIM_CORE_BENCH_HH
