/**
 * @file
 * Hierarchical symbiosis experiment (Section 7, Figure 4).
 *
 * With adaptive multithreaded jobs in the mix, SOS chooses at two
 * levels: which jobs to coschedule, and how many hardware contexts to
 * grant each adaptive job. A candidate is therefore an
 * (AllocationPlan, Schedule) pair; the sample phase profiles each
 * candidate, Score picks one, and the symbios phase measures what
 * every candidate would have delivered -- reproducing the paper's
 * improvement-over-average and improvement-over-worst bars.
 */

#ifndef SOS_SIM_HIERARCHICAL_EXPERIMENT_HH
#define SOS_SIM_HIERARCHICAL_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include <map>
#include <string>
#include <utility>

#include "core/allocation.hh"
#include "core/predictor.hh"
#include "core/schedule_profile.hh"
#include "sched/jobmix.hh"
#include "sched/schedule.hh"
#include "sim/experiment_defs.hh"
#include "sim/parallel_runner.hh"
#include "sim/sim_config.hh"
#include "sos/kernel.hh"

namespace sos {

namespace stats {
class EventTrace;
class Group;
} // namespace stats

/** One (allocation, schedule) choice available to hierarchical SOS. */
struct HierarchicalCandidate
{
    AllocationPlan plan;
    Schedule schedule;
    ScheduleProfile profile; ///< filled by the sample phase
    double symbiosWs = 0.0;  ///< filled by the symbios validation
};

/** Runs one Section 7 mix at one SMT level. */
class HierarchicalExperiment
{
  public:
    /**
     * @param max_candidates Cap on sampled (plan, schedule) pairs;
     *        schedules are spread evenly across allocation plans.
     */
    HierarchicalExperiment(const HierarchicalSpec &spec,
                           const SimConfig &config,
                           int max_candidates = 24);

    /** Sample every candidate, then measure its symbios WS. */
    void run(std::uint64_t symbios_cycles = 0);

    const HierarchicalSpec &spec() const { return spec_; }
    const std::vector<HierarchicalCandidate> &candidates() const
    {
        return candidates_;
    }

    double bestWs() const;
    double worstWs() const;
    double averageWs() const;

    /** Candidate index Score picks from the sample profiles. */
    int scoreBestIndex() const;

    /** Symbios WS of the Score-selected candidate. */
    double scoreWs() const;

    /** Figure 4 bars: Score's % improvement over the average/worst. */
    double improvementOverAveragePct() const;
    double improvementOverWorstPct() const;

    /**
     * Register the measured candidates under @p group: a
     * "candidate<i>" subtree per (plan, schedule) pair plus the
     * Figure 4 summary. Stats bind to this experiment's storage; call
     * after run() and keep the experiment alive for any dump.
     */
    void publishStats(const stats::Group &group) const;

    /**
     * Append the sample candidates, Score's "symbios_pick" and the
     * per-candidate "symbios_result" events to @p trace, in candidate
     * index order.
     */
    void recordTrace(stats::EventTrace &trace) const;

  private:
    /** Fresh mix with @p plan applied and soloIpc references set. */
    JobMix mixForPlan(const AllocationPlan &plan) const;

    /** Sweep recipe whose per-task mixes realize each plan. */
    ParallelScheduleRunner::SweepSpec makeSweep() const;

    HierarchicalSpec spec_;
    SimConfig config_;
    ParallelScheduleRunner runner_;
    /**
     * Solo-IPC references for every (workload, threads) combination
     * any allocation plan uses, measured once up front so the
     * parallel sweep tasks only read.
     */
    std::map<std::pair<std::string, int>, double> soloIpc_;
    std::vector<HierarchicalCandidate> candidates_;
    SosKernel kernel_; ///< runs both phases; results copied back
};

} // namespace sos

#endif // SOS_SIM_HIERARCHICAL_EXPERIMENT_HH
