#include "timeslice_engine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sos {

TimesliceEngine::TimesliceEngine(SmtCore &core,
                                 std::uint64_t timeslice_cycles)
    : core_(core), timeslice_(timeslice_cycles),
      sampler_(core, SampleWindows{})
{
    SOS_ASSERT(timeslice_cycles > 0);
}

void
TimesliceEngine::setTimesliceCycles(std::uint64_t cycles)
{
    SOS_ASSERT(cycles > 0);
    timeslice_ = cycles;
}

void
TimesliceEngine::evictAll()
{
    for (int slot = 0; slot < core_.params().numContexts; ++slot) {
        if (slots_[static_cast<std::size_t>(slot)].occupied) {
            core_.detachThread(slot);
            slots_[static_cast<std::size_t>(slot)].occupied = false;
        }
    }
}

void
TimesliceEngine::evictJob(const Job *job)
{
    for (int slot = 0; slot < core_.params().numContexts; ++slot) {
        Slot &s = slots_[static_cast<std::size_t>(slot)];
        if (s.occupied && s.unit.job == job) {
            core_.detachThread(slot);
            s.occupied = false;
        }
    }
}

std::vector<std::pair<int, ThreadRef>>
TimesliceEngine::residentUnits() const
{
    std::vector<std::pair<int, ThreadRef>> out;
    for (int slot = 0; slot < core_.params().numContexts; ++slot) {
        const Slot &s = slots_[static_cast<std::size_t>(slot)];
        if (s.occupied)
            out.emplace_back(slot, s.unit);
    }
    return out;
}

void
TimesliceEngine::adoptResident(
    const std::vector<std::pair<int, ThreadRef>> &resident)
{
    for (int slot = 0; slot < core_.params().numContexts; ++slot) {
        SOS_ASSERT(!slots_[static_cast<std::size_t>(slot)].occupied,
                   "adoptResident needs a fresh engine");
    }
    for (const auto &[slot, unit] : resident) {
        SOS_ASSERT(core_.slotActive(slot),
                   "adopted slot carries no pipeline state");
        ThreadBinding binding;
        binding.gen = &unit.job->generator(unit.thread);
        binding.sync = unit.job->syncDomain();
        binding.syncIndex = unit.thread;
        binding.asid = unit.job->asid();
        core_.rebindThread(slot, binding);
        slots_[static_cast<std::size_t>(slot)] = {true, unit};
    }
}

TimesliceEngine::SliceResult
TimesliceEngine::runTimeslice(const std::vector<ThreadRef> &units)
{
    const int num_slots = core_.params().numContexts;
    SOS_ASSERT(static_cast<int>(units.size()) <= num_slots,
               "more units than hardware contexts");
    for (std::size_t i = 0; i < units.size(); ++i) {
        for (std::size_t j = i + 1; j < units.size(); ++j) {
            SOS_ASSERT(!(units[i] == units[j]),
                       "a unit cannot occupy two contexts");
        }
    }

    // Swap out units that are leaving.
    for (int slot = 0; slot < num_slots; ++slot) {
        Slot &s = slots_[static_cast<std::size_t>(slot)];
        if (!s.occupied)
            continue;
        const bool staying =
            std::find(units.begin(), units.end(), s.unit) != units.end();
        if (!staying) {
            core_.detachThread(slot);
            s.occupied = false;
        }
    }

    // Swap in units that are entering; record each unit's slot.
    std::vector<int> &unit_slot = unitSlotScratch_;
    unit_slot.assign(units.size(), -1);
    for (std::size_t u = 0; u < units.size(); ++u) {
        for (int slot = 0; slot < num_slots; ++slot) {
            const Slot &s = slots_[static_cast<std::size_t>(slot)];
            if (s.occupied && s.unit == units[u]) {
                unit_slot[u] = slot;
                break;
            }
        }
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
        if (unit_slot[u] >= 0)
            continue;
        int free_slot = -1;
        for (int slot = 0; slot < num_slots; ++slot) {
            if (!slots_[static_cast<std::size_t>(slot)].occupied) {
                free_slot = slot;
                break;
            }
        }
        SOS_ASSERT(free_slot >= 0, "no free context for incoming unit");
        const ThreadRef &unit = units[u];
        ThreadBinding binding;
        binding.gen = &unit.job->generator(unit.thread);
        binding.sync = unit.job->syncDomain();
        binding.syncIndex = unit.thread;
        binding.asid = unit.job->asid();
        core_.attachThread(free_slot, binding);
        slots_[static_cast<std::size_t>(free_slot)] = {true, unit};
        unit_slot[u] = free_slot;
    }

    SliceResult result;
    sampler_.run(timeslice_, result.counters);

    result.unitRetired.resize(units.size(), 0);
    for (std::size_t u = 0; u < units.size(); ++u) {
        const auto slot = static_cast<std::size_t>(unit_slot[u]);
        const std::uint64_t retired = result.counters.slotRetired[slot];
        result.unitRetired[u] = retired;
        units[u].job->addRetired(retired);
    }
    // Credit residency once per distinct job in the running set.
    for (std::size_t u = 0; u < units.size(); ++u) {
        bool first = true;
        for (std::size_t v = 0; v < u; ++v) {
            if (units[v].job == units[u].job)
                first = false;
        }
        if (first)
            units[u].job->addResidentCycles(timeslice_);
    }
    return result;
}

TimesliceEngine::ScheduleRunResult
TimesliceEngine::runSchedule(JobMix &mix, const Schedule &schedule,
                             std::uint64_t timeslices)
{
    SOS_ASSERT(schedule.valid());
    ScheduleRunResult result;
    result.jobRetired.assign(static_cast<std::size_t>(mix.numJobs()), 0);

    for (std::uint64_t t = 0; t < timeslices; ++t) {
        const std::vector<int> &tuple = schedule.tupleAt(t);
        std::vector<ThreadRef> &units = unitsScratch_;
        units.clear();
        units.reserve(tuple.size());
        for (int unit_index : tuple)
            units.push_back(mix.unit(unit_index));

        const SliceResult slice = runTimeslice(units);
        result.total += slice.counters;
        result.sliceIpc.push_back(slice.counters.ipc());
        result.sliceMixImbalance.push_back(
            slice.counters.mixImbalance());
        for (std::size_t u = 0; u < units.size(); ++u) {
            // Job ids are 1-based insertion order within the mix.
            const int job_index =
                static_cast<int>(units[u].job->id()) - 1;
            result.jobRetired[static_cast<std::size_t>(job_index)] +=
                slice.unitRetired[u];
        }
        result.cycles += timeslice_;
    }
    return result;
}

} // namespace sos
