#include "machine_experiment.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/calibrator.hh"
#include "metrics/weighted_speedup.hh"
#include "sim/snapshot.hh"
#include "sos/closed_backend.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {

namespace {

std::uint64_t
hashLabel(const std::string &label)
{
    // FNV-1a: stable per-label seed derivation.
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : label)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

std::string
partitionLabel(const Partition &allocation)
{
    std::string out;
    for (const std::vector<int> &group : allocation) {
        out += '{';
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (i > 0)
                out += ',';
            out += std::to_string(group[i]);
        }
        out += '}';
    }
    return out;
}

/** Package one measured machine run the way the sweeps report it. */
ParallelScheduleRunner::ScheduleRun
toScheduleRun(const MachineEngine::MachineRunResult &run,
              const JobMix &mix)
{
    ParallelScheduleRunner::ScheduleRun result;
    result.run.total = run.total;
    result.run.jobRetired = run.jobRetired;
    result.run.sliceIpc = run.sliceIpc;
    result.run.sliceMixImbalance = run.sliceMixImbalance;
    result.run.cycles = run.cycles;
    result.ws = weightedSpeedup(mix, run.jobRetired, run.cycles);
    return result;
}

/**
 * The machine sweep presented to the kernel. Machine phases run every
 * candidate for the same number of quanta, so the kernel's per-index
 * interval function is evaluated once.
 */
class MachineSweepBackend : public ClosedSweepBackend
{
  public:
    using RunFn = std::function<
        std::vector<ParallelScheduleRunner::ScheduleRun>(
            std::uint64_t)>;

    MachineSweepBackend(const std::vector<MachineSchedule> &schedules,
                        RunFn run)
        : schedules_(schedules), run_(std::move(run))
    {
    }

    std::size_t
    numCandidates() const override
    {
        return schedules_.size();
    }

    std::string
    candidateLabel(std::size_t index) const override
    {
        return schedules_[index].label();
    }

    std::vector<ParallelScheduleRunner::ScheduleRun>
    runCandidates(
        const std::function<std::uint64_t(std::size_t)> &timeslices)
        const override
    {
        return run_(timeslices(0));
    }

  private:
    const std::vector<MachineSchedule> &schedules_;
    RunFn run_;
};

} // namespace

JobMix
MachineExperimentSpec::makeMix(std::uint64_t seed) const
{
    JobMix mix(seed);
    for (const std::string &workload : workloads)
        mix.addJob(workload);
    return mix;
}

const std::vector<MachineExperimentSpec> &
machineExperiments()
{
    // The Jsb(8,4,4) jobs (Table 1) redistributed over a CMP: the
    // same eight single-threaded jobs on two and on four two-way
    // cores. Jm(8,2,2,2) has 35 allocations x 3^2 per-core schedules
    // = 315 machine schedules; Jm(8,4,2,2) has 105.
    static const std::vector<MachineExperimentSpec> experiments = {
        {"Jm(8,2,2,2)",
         {"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"},
         2, 2, 2},
        {"Jm(8,4,2,2)",
         {"FP", "MG", "WAVE", "SWIM", "GCC", "GCC", "GO", "IS"},
         4, 2, 2},
    };
    return experiments;
}

MachineExperiment::MachineExperiment(const MachineExperimentSpec &spec,
                                     const SimConfig &config)
    : spec_(spec), config_(config),
      machineParams_(config.machineFor(spec.level, spec.numCores)),
      space_(spec.numJobs(), spec.numCores, spec.level, spec.swap,
             machineParams_.coreClasses()),
      mix_(spec.makeMix(config.seed ^ hashLabel(spec.label))),
      runner_(config.jobs)
{
    if (space_.heterogeneous())
        coreClasses_ = space_.coreClasses();

    // Solo IPC is a property of one job alone on one core; core 0's
    // configuration is the machine's reference class (on a
    // homogeneous machine that is the one configuration there is).
    Calibrator calibrator(machineParams_.coreParams(0),
                          machineParams_.memParams(0),
                          config_.calibWarmupCycles,
                          config_.calibMeasureCycles);
    calibrator.setSampling(config_.sample);
    calibrator.calibrate(mix_);

    if (coreClasses_.empty())
        return;
    // Heterogeneity-aware policies additionally need every job's solo
    // IPC on every core class. One calibrator per class representative
    // -- the process-wide cache already keys on the full per-class
    // configuration, so repeated experiments share the measurements.
    const int num_classes =
        1 + *std::max_element(coreClasses_.begin(), coreClasses_.end());
    soloIpcByClass_.resize(static_cast<std::size_t>(num_classes));
    for (int c = 0; c < num_classes; ++c) {
        const int rep = static_cast<int>(
            std::find(coreClasses_.begin(), coreClasses_.end(), c) -
            coreClasses_.begin());
        Calibrator class_calibrator(machineParams_.coreParams(rep),
                                    machineParams_.memParams(rep),
                                    config_.calibWarmupCycles,
                                    config_.calibMeasureCycles);
        class_calibrator.setSampling(config_.sample);
        auto &references = soloIpcByClass_[static_cast<std::size_t>(c)];
        for (int j = 0; j < mix_.numJobs(); ++j) {
            references.push_back(class_calibrator.soloIpc(
                mix_.job(j).name(), mix_.job(j).numThreads()));
        }
    }
}

std::uint64_t
MachineExperiment::timesliceCycles() const
{
    return config_.timesliceCycles();
}

JobMix
MachineExperiment::freshMix() const
{
    // Every task rebuilds the same mix from the same seed, so all
    // candidates see identical workload streams; the prototype's
    // calibration is copied instead of re-measured.
    JobMix mix = spec_.makeMix(config_.seed ^ hashLabel(spec_.label));
    for (int j = 0; j < mix.numJobs(); ++j)
        mix.job(j).soloIpc = mix_.job(j).soloIpc;
    return mix;
}

MachineSchedule
MachineExperiment::warmupFor(const Partition &allocation) const
{
    std::vector<Schedule> per_core;
    per_core.reserve(allocation.size());
    for (const std::vector<int> &raw : allocation) {
        std::vector<int> group = raw;
        std::sort(group.begin(), group.end());
        per_core.push_back(
            static_cast<int>(group.size()) == spec_.level
                ? Schedule::fromPartition({group})
                : Schedule::fromRotation(group, spec_.level,
                                         spec_.swap));
    }
    return MachineSchedule(allocation, std::move(per_core));
}

ParallelScheduleRunner::ScheduleRun
MachineExperiment::runOne(const MachineSchedule &schedule,
                          std::uint64_t timeslices) const
{
    JobMix mix = freshMix();
    // A private machine per task keeps the sweep a pure function of
    // the candidate index (DESIGN.md determinism contract).
    Machine machine(machineParams_);
    MachineEngine engine(machine, timesliceCycles());
    engine.setSampling(config_.sample);

    const MachineSchedule warm = warmupFor(schedule.allocation());
    engine.setSampleRecording(false);
    engine.runSchedule(mix, warm, warm.periodTimeslices());
    engine.setSampleRecording(true);

    return toScheduleRun(engine.runSchedule(mix, schedule, timeslices),
                         mix);
}

std::vector<ParallelScheduleRunner::ScheduleRun>
MachineExperiment::runAll(const std::vector<MachineSchedule> &schedules,
                          std::uint64_t timeslices) const
{
    if (!config_.snapshot) {
        return runner_.map<ParallelScheduleRunner::ScheduleRun>(
            schedules.size(), [&](std::size_t i) {
                return runOne(schedules[i], timeslices);
            });
    }

    // Shared-warmup fast path. The warmup key of a candidate is its
    // allocation: warmupFor() depends on nothing else, and every task
    // warms the same freshMix() on an identical machine, so all
    // candidates sharing an allocation reach bit-identical warmed
    // state (DESIGN.md §5c). Warm one snapshot per distinct
    // allocation -- in parallel, the groups are independent -- then
    // run each candidate's measured interval on a private fork.
    std::vector<std::size_t> group_of(schedules.size());
    std::vector<std::size_t> first_in_group;
    std::map<std::string, std::size_t> group_index;
    for (std::size_t i = 0; i < schedules.size(); ++i) {
        const auto [it, inserted] = group_index.emplace(
            partitionLabel(schedules[i].allocation()),
            first_in_group.size());
        if (inserted)
            first_in_group.push_back(i);
        group_of[i] = it->second;
    }

    const auto snapshots =
        runner_.map<std::shared_ptr<const MachineSnapshot>>(
            first_in_group.size(), [&](std::size_t g) {
                const MachineSchedule &leader =
                    schedules[first_in_group[g]];
                JobMix mix = freshMix();
                Machine machine(machineParams_);
                MachineEngine engine(machine, timesliceCycles());
                engine.setSampling(config_.sample);
                engine.setSampleRecording(false);
                const MachineSchedule warm =
                    warmupFor(leader.allocation());
                engine.runSchedule(mix, warm, warm.periodTimeslices());
                return std::make_shared<const MachineSnapshot>(
                    machine, mix, engine);
            });

    return runner_.map<ParallelScheduleRunner::ScheduleRun>(
        schedules.size(), [&](std::size_t i) {
            MachineSnapshot::Fork fork(*snapshots[group_of[i]]);
            MachineEngine engine(fork.machine(), timesliceCycles());
            engine.setSampling(config_.sample);
            fork.adopt(engine);
            return toScheduleRun(
                engine.runSchedule(fork.mix(), schedules[i],
                                   timeslices),
                fork.mix());
        });
}

void
MachineExperiment::runSamplePhase()
{
    Rng rng(config_.seed ^ hashLabel(spec_.label) ^ 0x5a3217e1ULL);
    schedules_ = space_.sample(config_.sampleSchedules, rng);

    const auto periods =
        static_cast<std::uint64_t>(std::max(1, config_.samplePeriods));
    const std::uint64_t timeslices =
        space_.periodTimeslices() * periods;
    const MachineSweepBackend backend(
        schedules_,
        [this](std::uint64_t t) { return runAll(schedules_, t); });
    kernel_.runSamplePhase(
        backend, [timeslices](std::size_t) { return timeslices; });
}

void
MachineExperiment::runSymbiosValidation(std::uint64_t symbios_cycles)
{
    const std::uint64_t cycles =
        symbios_cycles > 0 ? symbios_cycles : config_.symbiosCycles();
    const std::uint64_t timeslices =
        std::max<std::uint64_t>(1, cycles / timesliceCycles());

    const MachineSweepBackend backend(
        schedules_,
        [this](std::uint64_t t) { return runAll(schedules_, t); });
    kernel_.runSymbiosValidation(
        backend, [timeslices](std::size_t) { return timeslices; });

    // Replay the measured best on a persistent machine so dumps can
    // read live cache and contention counters (publishStats binds,
    // never copies).
    const std::vector<double> &symbios = kernel_.symbiosWs();
    bestIndex_ = static_cast<int>(
        std::max_element(symbios.begin(), symbios.end()) -
        symbios.begin());
    const MachineSchedule &best =
        schedules_[static_cast<std::size_t>(bestIndex_)];
    JobMix mix = freshMix();
    statsMachine_ = std::make_unique<Machine>(machineParams_);
    MachineEngine engine(*statsMachine_, timesliceCycles());
    engine.setSampling(config_.sample);
    const MachineSchedule warm = warmupFor(best.allocation());
    engine.setSampleRecording(false);
    engine.runSchedule(mix, warm, warm.periodTimeslices());
    engine.setSampleRecording(true);
    bestRun_ = engine.runSchedule(mix, best, timeslices);
    engine.evictAll();
}

const MachineExperiment::PolicyResult &
MachineExperiment::evaluatePolicy(const std::string &name,
                                  std::uint64_t symbios_cycles)
{
    SOS_ASSERT(!kernel_.profiles().empty(),
               "run the sample phase first");
    const std::unique_ptr<ThreadToCorePolicy> policy =
        makeThreadToCorePolicy(name);

    AllocationContext ctx;
    ctx.numJobs = spec_.numJobs();
    ctx.numCores = spec_.numCores;
    for (int j = 0; j < mix_.numJobs(); ++j)
        ctx.soloIpc.push_back(mix_.job(j).soloIpc);
    ctx.samples = coscheduleSamples();
    ctx.seed = config_.seed ^ hashLabel(spec_.label);
    ctx.coreClass = coreClasses_;
    ctx.soloIpcByClass = soloIpcByClass_;

    PolicyResult result;
    result.policy = policy->name();
    result.allocation = policy->allocate(ctx);
    result.allocationLabel = partitionLabel(result.allocation);

    const std::vector<MachineSchedule> schedules =
        space_.schedulesForAllocation(result.allocation);
    const std::uint64_t cycles =
        symbios_cycles > 0 ? symbios_cycles : config_.symbiosCycles();
    const std::uint64_t timeslices =
        std::max<std::uint64_t>(1, cycles / timesliceCycles());
    const std::vector<ParallelScheduleRunner::ScheduleRun> runs =
        runAll(schedules, timeslices);

    double total = 0.0;
    double best = 0.0;
    for (const ParallelScheduleRunner::ScheduleRun &run : runs) {
        total += run.ws;
        best = std::max(best, run.ws);
    }
    result.schedulesRun = static_cast<int>(runs.size());
    result.bestWs = best;
    result.avgWs = runs.empty()
                       ? 0.0
                       : total / static_cast<double>(runs.size());
    policyResults_.push_back(std::move(result));
    return policyResults_.back();
}

std::vector<CoscheduleSample>
MachineExperiment::coscheduleSamples() const
{
    const std::vector<ScheduleProfile> &profiles = kernel_.profiles();
    std::vector<CoscheduleSample> samples;
    samples.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        CoscheduleSample sample;
        const MachineSchedule &schedule = schedules_[i];
        for (int k = 0; k < schedule.numCores(); ++k) {
            const auto &tuples = schedule.coreSchedule(k).tuples();
            sample.tuples.insert(sample.tuples.end(), tuples.begin(),
                                 tuples.end());
        }
        sample.ws = profiles[i].sampleWs;
        samples.push_back(std::move(sample));
    }
    return samples;
}

void
MachineExperiment::publishStats(const stats::Group &group) const
{
    group.info("label", "machine experiment label") = spec_.label;
    group.scalar("sample_phase_cycles",
                 "simulated machine cycles spent profiling candidates")
        .bind(&kernel_.samplePhaseCyclesStorage());

    const std::vector<ScheduleProfile> &profiles = kernel_.profiles();
    const std::vector<double> &symbios = kernel_.symbiosWs();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const ScheduleProfile &profile = profiles[i];
        const stats::Group cand =
            group.group("candidate" + std::to_string(i));
        cand.info("schedule", "candidate machine schedule label") =
            profile.label;
        cand.value("sample_ws", "WS observed during the sample phase") =
            profile.sampleWs;
        cand.value("balance", "stddev of per-timeslice machine IPC") =
            profile.balance();
        cand.value("diversity",
                   "mean per-timeslice machine mix imbalance") =
            profile.diversity();
        if (i < symbios.size())
            cand.value("ws", "symbios-phase machine weighted speedup") =
                symbios[i];
        profile.counters.registerStats(cand.group("counters"));
    }

    if (statsMachine_) {
        // The acceptance-visible per-core groups: machine.l2.*,
        // machine.core<k>.{l1i,l1d,itlb,dtlb,prefetch,l2_contention},
        // plus each core's best-run pipeline counters.
        const stats::Group machine = group.group("machine");
        machine.info("best_schedule",
                     "machine schedule replayed for these counters") =
            schedules_[static_cast<std::size_t>(bestIndex_)].label();
        statsMachine_->registerStats(machine);
        for (std::size_t k = 0; k < bestRun_.perCore.size(); ++k) {
            bestRun_.perCore[k].registerStats(
                machine.group("core" + std::to_string(k))
                    .group("perf"));
        }
    }

    for (const PolicyResult &policy : policyResults_) {
        const stats::Group pg =
            group.group("policy").group(policy.policy);
        pg.info("allocation", "jobs-to-cores partition chosen") =
            policy.allocationLabel;
        pg.value("best_ws", "best symbios WS under the allocation") =
            policy.bestWs;
        pg.value("avg_ws", "mean symbios WS under the allocation") =
            policy.avgWs;
        pg.value("schedules_run",
                 "per-core schedule combinations measured") =
            static_cast<double>(policy.schedulesRun);
    }

    if (!symbios.empty()) {
        const stats::Group summary = group.group("summary");
        summary.value("best_ws", "best symbios WS in the sample") =
            bestWs();
        summary.value("worst_ws", "worst symbios WS in the sample") =
            worstWs();
        summary.value("avg_ws",
                      "oblivious-scheduler expectation over the sample") =
            averageWs();
    }
}

void
MachineExperiment::recordTrace(stats::EventTrace &trace) const
{
    const std::vector<ScheduleProfile> &profiles = kernel_.profiles();
    const std::vector<double> &symbios = kernel_.symbiosWs();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        trace.event("machine_sample_candidate")
            .field("experiment", spec_.label)
            .field("index", static_cast<std::uint64_t>(i))
            .field("schedule", profiles[i].label)
            .field("sample_ws", profiles[i].sampleWs)
            .field("ipc", profiles[i].counters.ipc());
    }
    if (!symbios.empty()) {
        for (const std::unique_ptr<Predictor> &predictor :
             makeAllPredictors()) {
            const int pick = predictedIndex(*predictor);
            trace.event("machine_predictor_vote")
                .field("experiment", spec_.label)
                .field("predictor", predictor->name())
                .field("pick", pick)
                .field("schedule",
                       profiles[static_cast<std::size_t>(pick)].label)
                .field("ws",
                       symbios[static_cast<std::size_t>(pick)]);
        }
        for (std::size_t i = 0; i < symbios.size(); ++i) {
            trace.event("machine_symbios_result")
                .field("experiment", spec_.label)
                .field("index", static_cast<std::uint64_t>(i))
                .field("schedule", profiles[i].label)
                .field("ws", symbios[i]);
        }
    }
    for (const PolicyResult &policy : policyResults_) {
        trace.event("allocation_policy")
            .field("experiment", spec_.label)
            .field("policy", policy.policy)
            .field("allocation", policy.allocationLabel)
            .field("best_ws", policy.bestWs)
            .field("avg_ws", policy.avgWs);
    }
}

} // namespace sos
