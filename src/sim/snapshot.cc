#include "snapshot.hh"

#include "common/logging.hh"

namespace sos {

MachineSnapshot::MachineSnapshot(const Machine &machine,
                                 const JobMix &mix,
                                 const TimesliceEngine &engine)
    : machine_(machine), mix_(mix)
{
    capture(mix, engine, 0);
}

MachineSnapshot::MachineSnapshot(const Machine &machine,
                                 const JobMix &mix,
                                 const MachineEngine &engine)
    : machine_(machine), mix_(mix)
{
    SOS_ASSERT(engine.numCores() == machine.numCores(),
               "engine and machine disagree on core count");
    for (int k = 0; k < engine.numCores(); ++k)
        capture(mix, engine.coreEngine(k), k);
}

void
MachineSnapshot::capture(const JobMix &mix,
                         const TimesliceEngine &engine, int core)
{
    for (const auto &[slot, unit] : engine.residentUnits()) {
        // Job ids are 1-based insertion order within the mix, so a
        // unit translates across mix copies by (job index, thread).
        const int job_index = static_cast<int>(unit.job->id()) - 1;
        SOS_ASSERT(&mix.job(job_index) == unit.job,
                   "resident unit's job is not owned by the mix");
        resident_.push_back(
            ResidentUnit{core, slot, job_index, unit.thread});
    }
}

MachineSnapshot::Fork::Fork(const MachineSnapshot &snapshot)
    : snapshot_(&snapshot), machine_(snapshot.machine_),
      mix_(snapshot.mix_)
{
}

void
MachineSnapshot::Fork::adopt(TimesliceEngine &engine, int core)
{
    std::vector<std::pair<int, ThreadRef>> resident;
    for (const ResidentUnit &unit : snapshot_->resident_) {
        if (unit.core != core)
            continue;
        Job &job = mix_.job(unit.jobIndex);
        resident.emplace_back(unit.slot, ThreadRef{&job, unit.thread});
    }
    engine.adoptResident(resident);
}

void
MachineSnapshot::Fork::adopt(MachineEngine &engine)
{
    for (int k = 0; k < engine.numCores(); ++k)
        adopt(engine.coreEngine(k), k);
}

} // namespace sos
