/**
 * @file
 * Experiment-level simulation configuration and cycle scaling.
 *
 * The paper's experiments use 5 M-cycle timeslices (a 10 ms quantum at
 * 500 MHz) and 2 G-cycle symbios phases. A software simulator cannot
 * afford that in a regression harness, so every paper duration is
 * divided by cycleScale (default 100). Relative quantities -- the
 * ratio of timeslice to cache warmup, of symbios to sample phase, of
 * job length to quantum -- are preserved, which is what the
 * sample/symbios machinery depends on. Reports print both scaled and
 * paper-equivalent cycle counts.
 */

#ifndef SOS_SIM_SIM_CONFIG_HH
#define SOS_SIM_SIM_CONFIG_HH

#include <cstdint>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "cpu/sample_windows.hh"
#include "mem/cache_hierarchy.hh"

namespace sos {

/** Shared configuration of one experiment run. */
struct SimConfig
{
    /** Paper cycles per simulated cycle. */
    std::uint64_t cycleScale = 100;

    /**
     * Symbios-phase length in simulated cycles. Decoupled from
     * cycleScale so the timeslice keeps a paper-like ratio to cache
     * warmup while the (statistically long) symbios phase stays
     * affordable; the paper's ~10:1 symbios-to-sample ratio is
     * preserved at the defaults.
     */
    std::uint64_t symbiosSimCycles = 3000000;

    /**
     * Master seed for schedule sampling and workload streams. The
     * default is chosen so the ten-schedule samples of the parallel
     * mixes Jpb/J2pb include at least one candidate that coschedules
     * the ARRAY threads (a property the paper's runs evidently had;
     * Section 6 needs both options on the table). Override with
     * SOS_SEED in the bench harnesses.
     */
    std::uint64_t seed = 0xa11ce7ULL;

    /** Schedules profiled per sample phase (the paper uses 10). */
    int sampleSchedules = 10;

    /**
     * Worker threads for parallel schedule sweeps. 0 means auto: the
     * SOS_JOBS environment variable when set, else the hardware
     * concurrency. Results are bit-identical for every value (the
     * determinism contract of ParallelScheduleRunner).
     */
    int jobs = 0;

    /**
     * Share candidate warmups through snapshot forks (see
     * sim/snapshot.hh). Semantics-preserving: results and manifests
     * are bit-identical either way (test-asserted), so this knob --
     * like jobs -- is host execution strategy, not simulation
     * configuration. SOS_SNAPSHOT=0 forces the legacy
     * warmup-per-candidate path.
     */
    bool snapshot = true;

    /**
     * Schedule periods run while profiling one candidate. The paper
     * uses exactly one period of 5 M-cycle timeslices; our scaled
     * timeslices make one period too noisy a counter sample, so each
     * candidate runs several periods (progress still counts -- the
     * sample phase remains overhead-free).
     */
    int samplePeriods = 3;

    /** @name Paper-time constants @{ */
    static constexpr std::uint64_t paperTimeslice = 5000000;
    static constexpr std::uint64_t paperSymbios = 2000000000;
    static constexpr std::uint64_t paperJobLength = 2000000000;
    /**
     * The 'little' timeslice of the Jsl experiments (the paper states
     * only that it is smaller; 1/4 reproduces Table 2's 100 M-cycle
     * sample phase for Jsl(8,4,1)).
     */
    static constexpr std::uint64_t paperLittleTimeslice =
        paperTimeslice / 4;
    /** @} */

    /** Core microarchitecture; numContexts is set per experiment. */
    CoreParams core;

    /** Memory hierarchy configuration. */
    MemParams mem;

    /**
     * @name Machine topology (--machine-config / SOS_MACHINE_CONFIG)
     *
     * A parsed machine config can force the core count and give every
     * core its own parameters.  All four fields stay at their empty
     * defaults when no config file is loaded, and none of them enters
     * configPairs(): the homogeneous default path must keep producing
     * byte-identical manifests to pre-config builds, and a
     * heterogeneous run documents itself through the machine.topology
     * manifest group instead.
     * @{
     */
    /** Core count forced by the config file (0 = per-experiment). */
    int machineCores = 0;

    /**
     * Per-core microarchitecture overrides; empty = homogeneous
     * machines built from `core`.  numContexts is still forced to the
     * experiment's MT level (see machineFor).
     */
    std::vector<CoreParams> heteroCores;

    /** Per-core private-memory overrides; empty = uniform `mem`. */
    std::vector<MemParams> heteroCoreMem;

    /** Per-core class name from the config file, for reporting. */
    std::vector<std::string> heteroCoreNames;

    /** Path of the loaded machine config ("" = none). */
    std::string machineConfigPath;
    /** @} */

    /** @name Calibration intervals (simulated cycles) @{ */
    std::uint64_t calibWarmupCycles = 300000;
    std::uint64_t calibMeasureCycles = 500000;
    /** @} */

    /**
     * Keep every Nth sample-phase decision group in the JSONL trace
     * (SOS_TRACE_SAMPLE / --set traceSample=N). 1 records every
     * decision; cluster runs at 10^5-10^6 jobs raise it to keep the
     * trace bounded. Pure observability -- simulation results and
     * manifests are identical for every stride -- so, like jobs and
     * snapshot, it never enters configPairs().
     */
    std::uint64_t traceSample = 1;

    /**
     * Sampled-simulation windows (SOS_SAMPLE / --set sample=U:W:M).
     * Disabled by default: the full-detail path is bit-identical to a
     * build without this knob and stays pinned by the §8/§9 goldens.
     * Unlike jobs/snapshot this IS simulation configuration -- sampled
     * counters are approximations -- so manifests record it whenever
     * it is enabled (and omit it when off, keeping golden manifests
     * byte-stable). Solo-IPC calibration always runs full detail.
     */
    SampleWindows sample;

    /**
     * Online sample shrinking (--set samplek=K): score every sampled
     * candidate with the trained model named by `model`, then
     * detail-simulate only the top-K predictions plus any candidate
     * whose prediction uncertainty exceeds the model's stored
     * threshold. 0 (the default) disables screening and the sample
     * phase is bit-identical to pre-model builds. Like `sample`, this
     * IS simulation configuration (the predictor sees fewer detailed
     * profiles), so manifests record it whenever it is active.
     */
    int samplek = 0;

    /**
     * Path of a trained WS model file (--model / SOS_MODEL), written
     * by sostrain. Consumed by the "learned" predictor, the "learned"
     * cluster dispatcher, and the samplek screen. Empty = no model;
     * recorded in manifests only when set.
     */
    std::string modelPath;

    /** Scale a paper-time duration into simulated cycles. */
    std::uint64_t
    scaled(std::uint64_t paper_cycles) const
    {
        SOS_ASSERT(cycleScale > 0);
        const std::uint64_t cycles = paper_cycles / cycleScale;
        SOS_ASSERT(cycles > 0, "scaled duration vanished");
        return cycles;
    }

    std::uint64_t timesliceCycles() const { return scaled(paperTimeslice); }

    std::uint64_t
    littleTimesliceCycles() const
    {
        return scaled(paperLittleTimeslice);
    }

    std::uint64_t symbiosCycles() const { return symbiosSimCycles; }

    /** Core parameters with the context count set. */
    CoreParams
    coreFor(int level) const
    {
        CoreParams params = core;
        params.numContexts = level;
        return params;
    }

    /**
     * Machine parameters for a @p num_cores machine at MT level
     * @p level: the homogeneous `core`/`mem` pair unless a machine
     * config supplied per-core overrides, in which case the config
     * must agree on the core count (fatal otherwise -- the caller
     * picked an experiment the configured machine cannot host).
     * Every core's numContexts is forced to @p level either way.
     */
    MachineParams
    machineFor(int level, int num_cores) const
    {
        MachineParams params;
        params.numCores = num_cores;
        params.core = coreFor(level);
        params.mem = mem;
        if (!heteroCores.empty()) {
            if (static_cast<int>(heteroCores.size()) != num_cores) {
                fatal("machine config '", machineConfigPath,
                      "' describes ", heteroCores.size(),
                      " cores but the experiment needs ", num_cores);
            }
            params.cores = heteroCores;
            for (CoreParams &core_params : params.cores)
                core_params.numContexts = level;
            params.coreMem = heteroCoreMem;
        }
        return params;
    }

    /** Per-core equivalence classes of the machineFor(level, n) CMP. */
    std::vector<int>
    machineClassesFor(int level, int num_cores) const
    {
        return machineFor(level, num_cores).coreClasses();
    }

    /**
     * The reference (core 0) configuration at @p level: what
     * single-core probes -- solo-IPC calibration, the open system's
     * capacity measurement -- run on. Identical to coreFor()/mem on
     * homogeneous machines.
     */
    CoreParams
    referenceCoreFor(int level) const
    {
        CoreParams params =
            heteroCores.empty() ? core : heteroCores.front();
        params.numContexts = level;
        return params;
    }

    /** Core 0's memory hierarchy (== `mem` when homogeneous). */
    const MemParams &
    referenceMem() const
    {
        return heteroCoreMem.empty() ? mem : heteroCoreMem.front();
    }
};

/** Default configuration used by the benchmark harnesses. */
inline SimConfig
makeBenchConfig()
{
    return SimConfig{};
}

/** A much faster configuration for unit and integration tests. */
inline SimConfig
makeFastConfig()
{
    SimConfig config;
    config.cycleScale = 500;
    config.symbiosSimCycles = 400000;
    config.calibWarmupCycles = 200000;
    config.calibMeasureCycles = 300000;
    return config;
}

} // namespace sos

#endif // SOS_SIM_SIM_CONFIG_HH
